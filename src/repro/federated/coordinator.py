"""The federation coordinator: validate, tree-merge, fit, release.

The coordinator is a strict state machine: an envelope is decoded and
**fully validated before any state mutates** (wire checksum, version,
schema fingerprint, cross-envelope agreement on seed/epsilons, duplicate
and range checks), so a rejected envelope — which raises a typed,
non-retryable :class:`~repro.exceptions.FederatedError` — provably
leaves the merged view exactly as it was.  Only a successful ``submit``
stores anything.

Merging is a deterministic tree over the accepted accumulators in
ascending party order.  Because the accumulator's block reduction is a
correctly-rounded multiset sum, *every* tree shape yields bit-identical
statistics — ``sequential`` (a left fold) and ``balanced`` (a pairwise
tournament) are both offered so tests can assert that invariant rather
than assume it.

Fitting routes through the existing engine/runtime stack
(:class:`~repro.engine.sweep.EpsilonSweepEngine`, whose spectral path
runs the stacked runtime kernels):

``central``
    Merge, then sweep with the noise substream keyed by the shared seed
    — bitwise identical to single-box ingestion of the concatenated
    rows (:func:`centralized_fit` is that baseline, for digest checks).
``share``
    Merge, reconstruct the central standardized sample from the
    parties' mod-2^64 shares (bit-exact, see
    :mod:`repro.federated.noise`), and inject it through
    :meth:`~repro.engine.sweep.EpsilonSweepEngine.sweep_from_draws` —
    the release is bitwise identical to ``central`` mode.
``party``
    Sum the parties' locally perturbed coefficient stacks (ascending
    party order) and repair/solve each sweep point with spectral
    trimming at the K-party noise scale.  No clean statistics exist on
    the coordinator in this mode.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ..core.polynomial import QuadraticForm
from ..core.postprocess import SpectralTrimming
from ..engine.accumulator import MomentAccumulator
from ..engine.sweep import EpsilonSweepEngine, EpsilonSweepResult
from ..exceptions import FederatedError
from ..experiments.harness import objective_for
from ..obs import active_recorder
from ..privacy.rng import derive_substream
from .noise import FED_NOISE_TAG, combine_shares
from .party import FederationSpec
from .wire import PartyEnvelope, decode_envelope

__all__ = [
    "MERGE_TREES",
    "FederatedCoordinator",
    "FederatedFitResult",
    "centralized_fit",
    "released_digest",
    "tree_merge",
]

#: Deterministic merge orders the coordinator offers (both bit-identical).
MERGE_TREES = ("sequential", "balanced")


def released_digest(
    task: str, dim: int, epsilons: Sequence[float], coefficients: np.ndarray
) -> str:
    """Content digest of a released sweep — the CI bit-identity check."""
    h = hashlib.sha256()
    h.update(
        json.dumps(
            {
                "task": str(task),
                "dim": int(dim),
                "epsilons": [float(e) for e in epsilons],
            },
            sort_keys=True,
        ).encode()
    )
    h.update(np.ascontiguousarray(coefficients, dtype=float).tobytes())
    return h.hexdigest()


def tree_merge(
    accumulators: Sequence[MomentAccumulator], tree: str = "balanced"
) -> MomentAccumulator:
    """Merge accumulators under a deterministic tree shape (non-mutating).

    ``sequential`` folds left: ``((a0 + a1) + a2) + ...``; ``balanced``
    merges adjacent pairs per round: ``(a0 + a1) + (a2 + a3)``.  The
    multiset reduction makes both bit-identical — offering two shapes
    exists so tests can *assert* that, not so callers must choose.
    """
    if tree not in MERGE_TREES:
        raise FederatedError(f"merge tree must be one of {MERGE_TREES}, got {tree!r}")
    if not accumulators:
        raise FederatedError("tree_merge needs at least one accumulator")
    recorder = active_recorder()
    nodes = [acc.copy() for acc in accumulators]
    with recorder.span("federated.merge", parties=len(nodes), tree=tree):
        if tree == "sequential":
            root = nodes[0]
            for node in nodes[1:]:
                root.merge(node)
                recorder.counter("federated.merges")
            return root
        while len(nodes) > 1:
            merged = []
            for i in range(0, len(nodes) - 1, 2):
                merged.append(nodes[i].merge(nodes[i + 1]))
                recorder.counter("federated.merges")
            if len(nodes) % 2:
                merged.append(nodes[-1])
            nodes = merged
        return nodes[0]


@dataclass(frozen=True)
class FederatedFitResult:
    """The coordinator's released view of one federated fit."""

    task: str
    dim: int
    noise_mode: str
    parties: int
    n_rows: int
    epsilons: tuple[float, ...]
    coefficients: np.ndarray  # (n_eps, d)
    digest: str
    sweep: Optional[EpsilonSweepResult] = None


class FederatedCoordinator:
    """Collect party envelopes, then merge and fit the federation.

    One coordinator instance serves one federation configuration
    (:class:`~repro.federated.party.FederationSpec`); every envelope
    must match its schema fingerprint exactly.
    """

    def __init__(self, spec: FederationSpec) -> None:
        self.spec = spec
        self._fingerprint = spec.fingerprint()
        self._envelopes: dict[int, PartyEnvelope] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """The schema fingerprint this coordinator accepts."""
        return self._fingerprint

    @property
    def received(self) -> tuple[int, ...]:
        """Party ids accepted so far, ascending."""
        return tuple(sorted(self._envelopes))

    @property
    def missing(self) -> tuple[int, ...]:
        """Party ids still outstanding, ascending."""
        return tuple(k for k in range(self.spec.parties) if k not in self._envelopes)

    # ------------------------------------------------------------------
    # Ingestion — validate fully, then (and only then) mutate
    # ------------------------------------------------------------------
    def submit(self, blob: bytes) -> PartyEnvelope:
        """Validate one envelope and accept it into the federation.

        Raises the typed non-retryable
        :class:`~repro.exceptions.FederatedError` family on any defect;
        on a raise, the coordinator's state is bit-for-bit unchanged.
        """
        recorder = active_recorder()
        with recorder.span("federated.submit"):
            try:
                envelope = decode_envelope(
                    blob, expected_fingerprint=self._fingerprint
                )
                self._validate_against_spec(envelope)
            except FederatedError:
                recorder.counter("federated.rejects")
                raise
            # --- the only state mutation; everything above may raise ---
            self._envelopes[envelope.party_id] = envelope
            recorder.counter("federated.parties")
            recorder.counter("federated.bytes", len(blob))
        return envelope

    def submit_path(self, path: str | Path) -> PartyEnvelope:
        """Read one envelope file and :meth:`submit` it."""
        try:
            blob = Path(path).read_bytes()
        except OSError as exc:
            active_recorder().counter("federated.rejects")
            raise FederatedError(f"cannot read envelope {path}: {exc}") from None
        return self.submit(blob)

    def _validate_against_spec(self, envelope: PartyEnvelope) -> None:
        spec = self.spec
        if envelope.seed != spec.seed:
            raise FederatedError(
                f"envelope from party {envelope.party_id} was keyed by seed "
                f"{envelope.seed}, this federation runs seed {spec.seed}"
            )
        if envelope.epsilons != spec.epsilons:
            raise FederatedError(
                f"envelope from party {envelope.party_id} carries epsilons "
                f"{envelope.epsilons}, this federation sweeps {spec.epsilons}"
            )
        if envelope.party_id in self._envelopes:
            raise FederatedError(
                f"party {envelope.party_id} already submitted; duplicate refused"
            )

    # ------------------------------------------------------------------
    # Merging and fitting
    # ------------------------------------------------------------------
    def _complete_envelopes(self) -> list[PartyEnvelope]:
        if self.missing:
            raise FederatedError(
                f"federation incomplete: missing parties {list(self.missing)} "
                f"of {self.spec.parties}"
            )
        return [self._envelopes[k] for k in range(self.spec.parties)]

    def merged_accumulator(self, tree: str = "balanced") -> MomentAccumulator:
        """The tree-merged clean statistics (central/share modes only)."""
        envelopes = self._complete_envelopes()
        if self.spec.noise_mode == "party":
            raise FederatedError(
                "party mode ships no clean statistics; there is no merged "
                "accumulator to expose"
            )
        return tree_merge([e.accumulator for e in envelopes], tree=tree)

    @property
    def n_rows(self) -> int:
        """Total rows across the accepted envelopes."""
        return sum(e.n_rows for e in self._envelopes.values())

    def fit(self, tree: str = "balanced") -> FederatedFitResult:
        """Merge and fit the complete federation; release the sweep."""
        envelopes = self._complete_envelopes()
        spec = self.spec
        with active_recorder().span(
            "federated.fit", mode=spec.noise_mode, parties=spec.parties
        ):
            objective = objective_for(spec.task, spec.dim)
            if spec.noise_mode == "party":
                coefficients = self._fit_party_mode(envelopes, objective)
                sweep = None
            else:
                merged = tree_merge([e.accumulator for e in envelopes], tree=tree)
                engine = EpsilonSweepEngine(
                    objective, merged, tight_sensitivity=spec.tight_sensitivity
                )
                if spec.noise_mode == "central":
                    gen = derive_substream(
                        spec.seed, [FED_NOISE_TAG], spec.stream_version
                    )
                    sweep = engine.sweep(spec.epsilons, rng=gen)
                else:  # share: reconstruct the central sample bit-exactly
                    raw = combine_shares([e.share for e in envelopes])
                    sweep = engine.sweep_from_draws(spec.epsilons, raw)
                coefficients = sweep.coefficients
        return FederatedFitResult(
            task=spec.task,
            dim=spec.dim,
            noise_mode=spec.noise_mode,
            parties=spec.parties,
            n_rows=sum(e.n_rows for e in envelopes),
            epsilons=spec.epsilons,
            coefficients=coefficients,
            digest=released_digest(spec.task, spec.dim, spec.epsilons, coefficients),
            sweep=sweep,
        )

    def _fit_party_mode(self, envelopes, objective) -> np.ndarray:
        """Sum the locally perturbed stacks and repair each sweep point.

        The summed objective at sweep point ``i`` carries K independent
        Laplace(``Delta / epsilon_i``) noises per coefficient, so the
        spectral repair runs at ``sqrt(2 K) * Delta / epsilon_i`` — the
        actual standard deviation of the combined noise.
        """
        spec = self.spec
        # Ascending party order: plain ndarray addition is not order-
        # invariant at rounding scale, so the order is pinned.
        M = sum(e.noisy_M for e in envelopes)
        alpha = sum(e.noisy_alpha for e in envelopes)
        beta = sum(e.noisy_beta for e in envelopes)
        sensitivity = objective.sensitivity(tight=spec.tight_sensitivity)
        strategy = SpectralTrimming()
        coefficients = np.empty((len(spec.epsilons), spec.dim))
        for i, epsilon in enumerate(spec.epsilons):
            noise_std = math.sqrt(2.0 * spec.parties) * sensitivity / epsilon
            noisy = QuadraticForm(M=M[i], alpha=alpha[i], beta=beta[i])
            coefficients[i] = strategy.solve(noisy, noise_std).omega
        return coefficients


def centralized_fit(
    spec: FederationSpec, X: np.ndarray, y: np.ndarray
) -> FederatedFitResult:
    """The single-box baseline the federated digests are checked against.

    Ingests the concatenated rows into one accumulator and sweeps with
    the *same* keyed noise substream the coordinator uses — in
    ``central`` (and, by bit-exact share reconstruction, ``share``)
    mode, :meth:`FederatedCoordinator.fit` must match this digest
    bit for bit.
    """
    accumulator = MomentAccumulator(spec.dim, block_size=spec.block_size)
    accumulator.update(X, y)
    objective = objective_for(spec.task, spec.dim)
    engine = EpsilonSweepEngine(
        objective, accumulator, tight_sensitivity=spec.tight_sensitivity
    )
    gen = derive_substream(spec.seed, [FED_NOISE_TAG], spec.stream_version)
    sweep = engine.sweep(spec.epsilons, rng=gen)
    return FederatedFitResult(
        task=spec.task,
        dim=spec.dim,
        noise_mode="central",
        parties=1,
        n_rows=accumulator.n_rows,
        epsilons=spec.epsilons,
        coefficients=sweep.coefficients,
        digest=released_digest(spec.task, spec.dim, spec.epsilons, sweep.coefficients),
        sweep=sweep,
    )
