"""Coordinator-view conformance releases for the tier-2 auditor.

The federation must be auditable the same way every other mechanism is:
as a black box mapping ``(packed database, generator) -> one scalar``.
:func:`coordinator_release` builds exactly that — per trial it runs the
whole protocol in-process (split rows across K parties, per-party
accumulators, deterministic tree merge, the mode's noise path) and
releases the coordinator's noisy linear coefficient ``alpha[0]``, the
same sharpest observable the single-box FM spec audits.  Noise comes
from the *passed* generator (fresh per trial — a statistical audit needs
independent releases; the keyed-substream reproducibility of the
protocol proper is covered by the bitwise tests instead).

``central`` mode draws one standardized row and scales it like the
sweep, so its released coordinate is distributionally identical to
single-box FM — the audit must certify the *same* epsilon lower bounds.
``party`` mode sums K locally perturbed coefficients; the replaced tuple
lives in exactly one party, whose local release is epsilon-DP, and the
other parties' independent noise is post-processing — so the same
pair-calibrated ceiling applies, with extra slack from the K-fold noise.
"""

from __future__ import annotations

import numpy as np

from ..experiments.harness import objective_for
from .coordinator import tree_merge
from .noise import perturb_form_stack
from .party import split_rows
from ..engine.accumulator import MomentAccumulator

__all__ = ["coordinator_release"]


def coordinator_release(
    task: str,
    epsilon: float,
    parties: int = 3,
    noise_mode: str = "central",
    tree: str = "balanced",
):
    """A tier-2 ``Release`` over the coordinator's released view.

    Returns a callable ``(db, gen) -> float`` running the K-party
    protocol per invocation and releasing the coordinator's noisy
    ``alpha[0]``.
    """
    if noise_mode not in ("central", "party"):
        # share mode reconstructs the central sample bit-exactly, so its
        # released distribution IS central mode's; auditing it separately
        # would re-run the same trial twice.
        raise ValueError(
            f"auditable noise modes are 'central' and 'party', got {noise_mode!r}"
        )
    epsilon = float(epsilon)
    parties = int(parties)

    def release(db: np.ndarray, gen: np.random.Generator) -> float:
        X, y = db[:, :-1], db[:, -1]
        dim = X.shape[1]
        objective = objective_for(task, dim)
        sensitivity = objective.sensitivity()
        # Row-granular split: audit pairs are tiny, and the statistical
        # audit needs rows actually distributed across parties (bitwise
        # block alignment is the bit-identity tests' concern, not ours).
        slices = split_rows(X, y, parties, block_size=1)
        accumulators = [
            MomentAccumulator(dim).update(Xk, yk) for Xk, yk in slices
        ]
        if noise_mode == "central":
            merged = tree_merge(accumulators, tree=tree)
            form = merged.quadratic_form(objective)
            # One standardized sweep row, consumed with the engine's
            # layout (scalar, then the d linear draws the release reads).
            raw = gen.laplace(0.0, 1.0, size=1 + dim + dim * dim)
            return float(form.alpha[0] + (sensitivity / epsilon) * raw[1])
        # party mode: K independent local perturbations, summed.
        total = 0.0
        for accumulator in accumulators:
            _, alpha_stack, _ = perturb_form_stack(
                accumulator.quadratic_form(objective),
                [epsilon],
                sensitivity,
                gen,
            )
            total += float(alpha_stack[0, 0])
        return total

    return release
