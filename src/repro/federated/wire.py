"""The federated wire format: versioned, checksummed party envelopes.

A party's contribution travels as a single self-describing blob:

    one-line JSON header \\n  .npz payload

The header carries the wire version, the payload byte count and SHA-256
(the outer integrity layer), a **schema fingerprint** binding the
envelope to one exact federation configuration (task, dimensionality,
block size, stream version, backend, noise mode, party count), and the
party's public metadata (id, row count, epsilons, seed).  The payload is
a standard ``.npz`` archive whose members depend on the noise mode:

``central`` / ``share``
    ``acc`` — the party's clean :class:`~repro.engine.accumulator.
    MomentAccumulator` serialized through the PR-7 ``.acc`` codec
    (:func:`~repro.engine.cache.encode_entry`), i.e. *its own* inner
    header + checksum.  One decoder — and one corruption-test surface —
    covers the cache, serve snapshots, and the federation wire.
``share`` additionally
    ``share`` — the party's additive noise share: a ``uint64`` array
    over the mod-2^64 ring whose sum across all parties is the exact
    IEEE-754 bit pattern of the central standardized Laplace sample
    (see :mod:`repro.federated.noise`).
``party``
    ``noisy_M`` ``(n_eps, d, d)``, ``noisy_alpha`` ``(n_eps, d)``,
    ``noisy_beta`` ``(n_eps,)`` — the party's locally *perturbed*
    objective coefficients, one Algorithm-1 release per sweep point.
    No clean statistics ever leave the party in this mode.

Validation is strictly fail-before-mutate: :func:`decode_envelope`
verifies the outer checksum, the wire version, the header's internal
schema-fingerprint consistency, the caller's expected fingerprint, the
payload structure *and* the inner ``.acc`` checksum before returning
anything, raising the typed non-retryable
:class:`~repro.exceptions.FederatedError` family on the first defect —
so a coordinator that only mutates state after a successful decode can
never be left partially merged by a bad envelope.
"""

from __future__ import annotations

import hashlib
import io
import json
import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..engine.accumulator import MomentAccumulator
from ..engine.cache import decode_entry, encode_entry
from ..exceptions import (
    CacheIntegrityError,
    SchemaMismatchError,
    VersionMismatchError,
    WireFormatError,
)

__all__ = [
    "WIRE_VERSION",
    "SUPPORTED_WIRE_VERSIONS",
    "NOISE_MODES",
    "PartyEnvelope",
    "schema_fingerprint",
    "encode_envelope",
    "decode_envelope",
]

#: Wire format version written by this build.
WIRE_VERSION = 1

#: Wire format versions this build can decode.
SUPPORTED_WIRE_VERSIONS = (1,)

#: How the FM noise is produced (see :mod:`repro.federated.noise`).
NOISE_MODES = ("central", "share", "party")


def schema_fingerprint(
    *,
    task: str,
    dim: int,
    block_size: int,
    stream_version: int,
    backend: str,
    noise_mode: str,
    parties: int,
) -> str:
    """SHA-256 over the canonical federation-schema document.

    Two endpoints with equal fingerprints compute the same release from
    the same rows; any field differing — even the backend, which only
    matters at ulp scale — changes the digest, so mismatched envelopes
    are refused instead of silently blended.
    """
    doc = json.dumps(
        {
            "task": str(task),
            "dim": int(dim),
            "block_size": int(block_size),
            "stream_version": int(stream_version),
            "backend": str(backend),
            "noise_mode": str(noise_mode),
            "parties": int(parties),
        },
        sort_keys=True,
    )
    return hashlib.sha256(doc.encode()).hexdigest()


@dataclass(frozen=True)
class PartyEnvelope:
    """One party's decoded, fully validated contribution."""

    party_id: int
    parties: int
    task: str
    dim: int
    n_rows: int
    block_size: int
    stream_version: int
    backend: str
    noise_mode: str
    seed: int
    epsilons: tuple[float, ...]
    fingerprint: str
    accumulator: Optional[MomentAccumulator] = None
    share: Optional[np.ndarray] = None  # uint64, (n_eps, 1 + d + d^2)
    noisy_M: Optional[np.ndarray] = None  # (n_eps, d, d)
    noisy_alpha: Optional[np.ndarray] = None  # (n_eps, d)
    noisy_beta: Optional[np.ndarray] = None  # (n_eps,)


def _noise_coefficients(dim: int) -> int:
    """Standardized Laplace coefficients per sweep point: 1 + d + d^2."""
    return 1 + dim + dim * dim


def encode_envelope(envelope: PartyEnvelope) -> bytes:
    """Serialize a party envelope into the versioned wire blob."""
    members: dict[str, np.ndarray] = {}
    if envelope.noise_mode in ("central", "share"):
        if envelope.accumulator is None:
            raise WireFormatError(
                f"noise mode {envelope.noise_mode!r} ships the clean "
                f"accumulator; none was provided"
            )
        members["acc"] = np.frombuffer(
            encode_entry(envelope.accumulator), dtype=np.uint8
        )
    if envelope.noise_mode == "share":
        if envelope.share is None:
            raise WireFormatError("noise mode 'share' needs a noise share")
        members["share"] = np.ascontiguousarray(envelope.share, dtype=np.uint64)
    if envelope.noise_mode == "party":
        if (
            envelope.noisy_M is None
            or envelope.noisy_alpha is None
            or envelope.noisy_beta is None
        ):
            raise WireFormatError(
                "noise mode 'party' ships perturbed coefficients; "
                "noisy_M/noisy_alpha/noisy_beta are required"
            )
        members["noisy_M"] = np.ascontiguousarray(envelope.noisy_M, dtype=float)
        members["noisy_alpha"] = np.ascontiguousarray(envelope.noisy_alpha, dtype=float)
        members["noisy_beta"] = np.ascontiguousarray(envelope.noisy_beta, dtype=float)
    buffer = io.BytesIO()
    np.savez(buffer, **members)
    payload = buffer.getvalue()
    header = {
        "wire": WIRE_VERSION,
        "nbytes": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
        "fingerprint": envelope.fingerprint,
        "party": int(envelope.party_id),
        "parties": int(envelope.parties),
        "task": envelope.task,
        "dim": int(envelope.dim),
        "n_rows": int(envelope.n_rows),
        "block_size": int(envelope.block_size),
        "stream_version": int(envelope.stream_version),
        "backend": envelope.backend,
        "noise_mode": envelope.noise_mode,
        "seed": int(envelope.seed),
        "epsilons": [float(e) for e in envelope.epsilons],
    }
    return json.dumps(header, sort_keys=True).encode() + b"\n" + payload


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise WireFormatError(message)


def decode_envelope(
    blob: bytes, expected_fingerprint: str | None = None
) -> PartyEnvelope:
    """Parse and fully validate a wire blob; any defect raises before return.

    Raises
    ------
    WireFormatError
        Structural damage: missing/garbled header, truncated or
        bit-flipped payload, malformed ``.npz``, a failed inner ``.acc``
        checksum, or metadata that contradicts the carried arrays.
    VersionMismatchError
        A well-formed envelope speaking an unsupported wire version.
    SchemaMismatchError
        The header's schema fingerprint is internally inconsistent
        (tampered header) or differs from ``expected_fingerprint``.
    """
    newline = blob.find(b"\n")
    if newline < 0:
        raise WireFormatError("federated envelope has no header line")
    try:
        header = json.loads(blob[:newline])
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"federated envelope header is unreadable: {exc}") from None
    if not isinstance(header, dict):
        raise WireFormatError(f"federated envelope header must be an object, got {type(header).__name__}")
    version = header.get("wire")
    if version not in SUPPORTED_WIRE_VERSIONS:
        raise VersionMismatchError(version, SUPPORTED_WIRE_VERSIONS)

    payload = blob[newline + 1 :]
    if len(payload) != header.get("nbytes"):
        raise WireFormatError(
            f"federated envelope truncated: expected {header.get('nbytes')} "
            f"payload bytes, found {len(payload)}"
        )
    if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
        raise WireFormatError("federated envelope failed its checksum")

    try:
        party_id = int(header["party"])
        parties = int(header["parties"])
        task = str(header["task"])
        dim = int(header["dim"])
        n_rows = int(header["n_rows"])
        block_size = int(header["block_size"])
        stream_version = int(header["stream_version"])
        backend = str(header["backend"])
        noise_mode = str(header["noise_mode"])
        seed = int(header["seed"])
        epsilons = tuple(float(e) for e in header["epsilons"])
    except (KeyError, TypeError, ValueError) as exc:
        raise WireFormatError(f"federated envelope header is incomplete: {exc}") from None
    _require(noise_mode in NOISE_MODES, f"unknown noise mode {noise_mode!r}")
    _require(parties >= 1, f"parties must be >= 1, got {parties}")
    _require(0 <= party_id < parties, f"party id {party_id} outside [0, {parties})")
    _require(dim >= 1 and block_size >= 1 and n_rows >= 0, "non-positive dimensions")
    _require(len(epsilons) >= 1, "envelope carries no epsilons")
    _require(
        all(math.isfinite(e) and e > 0.0 for e in epsilons),
        f"epsilons must be positive and finite, got {epsilons!r}",
    )

    stated = header.get("fingerprint")
    recomputed = schema_fingerprint(
        task=task,
        dim=dim,
        block_size=block_size,
        stream_version=stream_version,
        backend=backend,
        noise_mode=noise_mode,
        parties=parties,
    )
    if stated != recomputed:
        raise SchemaMismatchError(
            recomputed, str(stated), context="header fields contradict their fingerprint"
        )
    if expected_fingerprint is not None and stated != expected_fingerprint:
        raise SchemaMismatchError(expected_fingerprint, stated)

    try:
        archive = np.load(io.BytesIO(payload))
    except Exception as exc:
        raise WireFormatError(f"federated envelope payload is not a valid .npz: {exc}") from None
    with archive:
        members = set(archive.files)
        accumulator = share = noisy_M = noisy_alpha = noisy_beta = None
        n_coef = _noise_coefficients(dim)
        if noise_mode in ("central", "share"):
            _require("acc" in members, "envelope payload is missing 'acc'")
            try:
                accumulator = decode_entry(archive["acc"].tobytes())
            except CacheIntegrityError as exc:
                raise WireFormatError(
                    f"envelope accumulator failed its inner checksum: {exc}"
                ) from None
            _require(
                accumulator.dim == dim,
                f"accumulator dim {accumulator.dim} contradicts header dim {dim}",
            )
            _require(
                accumulator.block_size == block_size,
                f"accumulator block_size {accumulator.block_size} contradicts "
                f"header block_size {block_size}",
            )
            _require(
                accumulator.n_rows == n_rows,
                f"accumulator has {accumulator.n_rows} rows, header claims {n_rows}",
            )
        if noise_mode == "share":
            _require("share" in members, "share-mode envelope is missing 'share'")
            share = np.ascontiguousarray(archive["share"])
            _require(
                share.dtype == np.uint64,
                f"noise share must be uint64, got {share.dtype}",
            )
            _require(
                share.shape == (len(epsilons), n_coef),
                f"noise share has shape {share.shape}, expected "
                f"{(len(epsilons), n_coef)}",
            )
        if noise_mode == "party":
            for name in ("noisy_M", "noisy_alpha", "noisy_beta"):
                _require(name in members, f"party-mode envelope is missing {name!r}")
            noisy_M = np.ascontiguousarray(archive["noisy_M"], dtype=float)
            noisy_alpha = np.ascontiguousarray(archive["noisy_alpha"], dtype=float)
            noisy_beta = np.ascontiguousarray(archive["noisy_beta"], dtype=float)
            n_eps = len(epsilons)
            _require(
                noisy_M.shape == (n_eps, dim, dim)
                and noisy_alpha.shape == (n_eps, dim)
                and noisy_beta.shape == (n_eps,),
                f"party-mode coefficient stacks have shapes "
                f"{noisy_M.shape}/{noisy_alpha.shape}/{noisy_beta.shape}, "
                f"expected {(n_eps, dim, dim)}/{(n_eps, dim)}/{(n_eps,)}",
            )
            _require(
                bool(
                    np.all(np.isfinite(noisy_M))
                    and np.all(np.isfinite(noisy_alpha))
                    and np.all(np.isfinite(noisy_beta))
                ),
                "party-mode coefficients must be finite",
            )

    return PartyEnvelope(
        party_id=party_id,
        parties=parties,
        task=task,
        dim=dim,
        n_rows=n_rows,
        block_size=block_size,
        stream_version=stream_version,
        backend=backend,
        noise_mode=noise_mode,
        seed=seed,
        epsilons=epsilons,
        fingerprint=str(stated),
        accumulator=accumulator,
        share=share,
        noisy_M=noisy_M,
        noisy_alpha=noisy_alpha,
        noisy_beta=noisy_beta,
    )
