"""Party-side federation: local ingestion, local noise, envelope export.

A *party* is one data holder: it ingests its rows into its own
:class:`~repro.engine.accumulator.MomentAccumulator`, optionally draws
its local noise contribution (per the federation's noise mode), and
serializes everything into one wire envelope.  Nothing here talks to a
network — an envelope is bytes; the simulation writes them to files or
returns them through an executor, and a real deployment would ship the
same bytes however it likes.

Process simulation: :class:`PartyWork` is a module-level picklable
callable, so :func:`run_parties` can push each party through a
``fork``-context :class:`~repro.runtime.executor.PooledProcessExecutor`
— parties then genuinely run in separate OS processes with separate
address spaces (the executor's ``<= 1 item`` in-process short-circuit
never triggers for the ``K >= 2`` federations the simulation targets).

Per-party budgets: with ``budget_dir`` set, each party opens (or
resumes) its **own** durable :class:`~repro.privacy.budget.PrivacyBudget`
write-ahead journal and charges ``sum(epsilons)`` *before* its envelope
bytes exist — the same spend-before-release discipline as serve.  The
parties hold disjoint rows, so the budgets are genuinely independent
accountants, not shares of one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ..engine.accumulator import DEFAULT_BLOCK_SIZE, MomentAccumulator
from ..engine.sharding import shard_slices
from ..exceptions import FederatedError
from ..experiments.harness import objective_for
from ..obs import active_recorder
from ..privacy.budget import PrivacyBudget
from .noise import noise_share, party_noise_rng, perturb_form_stack
from .wire import NOISE_MODES, PartyEnvelope, encode_envelope, schema_fingerprint

__all__ = ["FederationSpec", "PartyWork", "run_party", "run_parties", "split_rows"]


@dataclass(frozen=True)
class FederationSpec:
    """The configuration every endpoint of one federation must agree on.

    Frozen and built from primitives only, so it pickles cleanly into
    forked party processes and its :meth:`fingerprint` is a pure
    function of its fields.
    """

    task: str
    dim: int
    epsilons: tuple[float, ...]
    seed: int
    parties: int
    noise_mode: str = "central"
    block_size: int = DEFAULT_BLOCK_SIZE
    stream_version: int = 2
    backend: str = "numpy"
    tight_sensitivity: bool = False
    budget_dir: Optional[str] = None
    budget_total: Optional[float] = None
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.noise_mode not in NOISE_MODES:
            raise FederatedError(
                f"noise mode must be one of {NOISE_MODES}, got {self.noise_mode!r}"
            )
        if self.parties < 1:
            raise FederatedError(f"parties must be >= 1, got {self.parties}")
        if not self.epsilons:
            raise FederatedError("a federation needs at least one epsilon")
        for e in self.epsilons:
            if not math.isfinite(e) or e <= 0.0:
                raise FederatedError(
                    f"epsilons must be positive and finite, got {self.epsilons!r}"
                )
        object.__setattr__(self, "epsilons", tuple(float(e) for e in self.epsilons))

    def fingerprint(self) -> str:
        """The schema fingerprint every envelope of this federation carries."""
        return schema_fingerprint(
            task=self.task,
            dim=self.dim,
            block_size=self.block_size,
            stream_version=self.stream_version,
            backend=self.backend,
            noise_mode=self.noise_mode,
            parties=self.parties,
        )


def split_rows(
    X: np.ndarray, y: np.ndarray, parties: int, block_size: int = DEFAULT_BLOCK_SIZE
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Contiguous, block-aligned row slices, one per party.

    Both properties carry the bit-identity contract: contiguity makes
    concatenating the slices in party order reproduce the original row
    order, and block alignment (boundaries on multiples of
    ``block_size``, via :func:`~repro.engine.sharding.shard_slices`)
    makes each party's canonical block decomposition coincide with the
    single-box one — so the tree-merged statistics equal single-box
    ingestion *bitwise*, not just numerically.  With fewer blocks than
    parties, trailing parties hold zero rows (still valid federation
    members).  Choose ``block_size`` so every party gets real rows when
    simulating small datasets.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if X.shape[0] != y.shape[0]:
        raise FederatedError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
    slices = shard_slices(X.shape[0], int(parties), block_size=int(block_size))
    return [(X[sl], y[sl]) for sl in slices]


def _charge_party_budget(spec: FederationSpec, party_id: int) -> None:
    """Open/resume this party's durable ledger and charge the release."""
    if spec.budget_dir is None:
        return
    cost = math.fsum(spec.epsilons)
    total = float(spec.budget_total) if spec.budget_total is not None else cost
    journal = Path(spec.budget_dir) / f"party-{party_id}.journal"
    if journal.exists() and journal.stat().st_size > 0:
        budget = PrivacyBudget.restore(journal)
    else:
        budget = PrivacyBudget(total, journal_path=journal)
    with budget:
        budget.spend(
            cost,
            note=(
                f"federated {spec.noise_mode} party={party_id} "
                f"task={spec.task} d={spec.dim} k={len(spec.epsilons)}"
            ),
        )


def run_party(
    spec: FederationSpec, party_id: int, X: np.ndarray, y: np.ndarray
) -> bytes:
    """One party, end to end: ingest -> local noise -> envelope bytes.

    In ``party`` mode the returned envelope carries *only* perturbed
    coefficients; the clean accumulator never leaves this function.  In
    every mode the per-party budget (if configured) is charged durably
    before the envelope bytes are produced.
    """
    party_id = int(party_id)
    if not 0 <= party_id < spec.parties:
        raise FederatedError(f"party id {party_id} outside [0, {spec.parties})")
    with active_recorder().span(
        "federated.party", party=party_id, mode=spec.noise_mode
    ):
        accumulator = MomentAccumulator(spec.dim, block_size=spec.block_size)
        accumulator.update(X, y)
        _charge_party_budget(spec, party_id)
        share = noisy_M = noisy_alpha = noisy_beta = None
        if spec.noise_mode == "share":
            share = noise_share(
                spec.seed,
                party_id,
                spec.parties,
                len(spec.epsilons),
                spec.dim,
                spec.stream_version,
            )
        elif spec.noise_mode == "party":
            objective = objective_for(spec.task, spec.dim)
            noisy_M, noisy_alpha, noisy_beta = perturb_form_stack(
                accumulator.quadratic_form(objective),
                spec.epsilons,
                objective.sensitivity(tight=spec.tight_sensitivity),
                party_noise_rng(spec.seed, party_id, spec.stream_version),
            )
        envelope = PartyEnvelope(
            party_id=party_id,
            parties=spec.parties,
            task=spec.task,
            dim=spec.dim,
            n_rows=accumulator.n_rows,
            block_size=spec.block_size,
            stream_version=spec.stream_version,
            backend=spec.backend,
            noise_mode=spec.noise_mode,
            seed=spec.seed,
            epsilons=spec.epsilons,
            fingerprint=spec.fingerprint(),
            accumulator=None if spec.noise_mode == "party" else accumulator,
            share=share,
            noisy_M=noisy_M,
            noisy_alpha=noisy_alpha,
            noisy_beta=noisy_beta,
        )
        return encode_envelope(envelope)


class PartyWork:
    """Picklable executor work: ``(party_id, X, y) -> envelope bytes | path``.

    With ``out_dir`` set, each party writes its envelope to
    ``party-<k>.fenv`` and only the path travels back (the CLI's file
    hand-off); without it the raw bytes are returned (the in-memory
    hand-off tests and the audit use).
    """

    def __init__(self, spec: FederationSpec, out_dir: str | None = None) -> None:
        self.spec = spec
        self.out_dir = out_dir

    def __call__(self, item: tuple[int, np.ndarray, np.ndarray]):
        party_id, X, y = item
        blob = run_party(self.spec, party_id, X, y)
        if self.out_dir is None:
            return blob
        path = Path(self.out_dir) / f"party-{int(party_id)}.fenv"
        path.write_bytes(blob)
        return str(path)


def run_parties(
    spec: FederationSpec,
    X: np.ndarray,
    y: np.ndarray,
    executor=None,
    out_dir: str | None = None,
) -> list:
    """Run every party of the federation over contiguous row slices.

    ``executor`` is any :class:`~repro.runtime.executor.CellExecutor`;
    a pooled process executor makes the parties real OS processes.
    Results come back in party order (the executor contract), as bytes
    or paths per :class:`PartyWork`.
    """
    slices = split_rows(X, y, spec.parties, block_size=spec.block_size)
    items = [(k, Xk, yk) for k, (Xk, yk) in enumerate(slices)]
    work = PartyWork(spec, out_dir=out_dir)
    if executor is None:
        return [work(item) for item in items]
    return executor.map(work, items)
