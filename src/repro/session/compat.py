"""Compatibility plumbing for the legacy kwarg-blob entry points.

Every pre-session entry point (``evaluate_algorithm``, the figure
drivers, ...) keeps working: it emits a :class:`DeprecationWarning`
naming its policy equivalent, builds a **one-shot session** from its own
kwargs, and delegates.  One-shot sessions run with ``reuse_pool=False``,
so a deprecated call executes through exactly the legacy pool lifecycle
(fresh pool per call, fork-time copy-on-write for processes) — results
are bitwise identical to the pre-session code by construction, and
asserted by ``tests/session/test_session_equivalence.py``.

Deprecation timeline: the shims stay through the current major version;
new in-repo code must not call them (CI runs the CLI and the verify
tiers under ``-W error::DeprecationWarning`` to prove it).
"""

from __future__ import annotations

import contextlib
import warnings

from ..runtime import CellExecutor
from .policy import ExecutionPolicy
from .session import Session

__all__ = ["legacy_session"]


def _policy_fields(
    runtime: str | None,
    executor,
    tile_size: int | None,
    stream_version: int | None,
    seed,
    shards: int | None = None,
) -> tuple[dict, CellExecutor | None]:
    """Legacy kwargs -> (policy fields, executor-instance override).

    ``None`` values fall through to the policy defaults — which is what
    centralizes the pending ``stream_version`` flip: a legacy call that
    never pinned a version tracks :data:`~repro.session.policy
    .DEFAULT_STREAM_VERSION` exactly like a session does.
    """
    override: CellExecutor | None = None
    fields: dict = {}
    if isinstance(executor, CellExecutor):
        override = executor
    elif executor is not None:
        fields["executor"] = executor
    if runtime is not None:
        fields["runtime"] = runtime
    if tile_size is not None:
        fields["tile_size"] = tile_size
    if stream_version is not None:
        fields["stream_version"] = stream_version
    if seed is not None:
        fields["seed"] = int(seed)
    if shards is not None:
        fields["shards"] = shards
    return fields, override


@contextlib.contextmanager
def legacy_session(
    entry_point: str,
    *,
    runtime: str | None = None,
    executor=None,
    tile_size: int | None = None,
    stream_version: int | None = None,
    seed=None,
    shards: int | None = None,
    stacklevel: int = 4,
):
    """Warn about a deprecated entry point and yield its one-shot session.

    Yields ``(session, executor_override)``; the override is non-``None``
    when the caller passed a constructed :class:`CellExecutor` instance,
    which a policy (a serializable value) cannot capture.

    ``stacklevel`` must land the warning on the *user's* call site: 4
    covers warn -> contextlib ``__enter__`` -> shim -> user; a shim with
    an extra internal frame (the figure drivers share ``_legacy_figure``)
    passes 5.
    """
    fields, override = _policy_fields(
        runtime, executor, tile_size, stream_version, seed, shards
    )
    policy = ExecutionPolicy(**fields)
    warnings.warn(
        f"{entry_point}() with threaded execution kwargs is deprecated; "
        f"use repro.session instead — the equivalent is "
        f"Session({policy.describe()}) and its evaluate/evaluate_panel/"
        f"budget_sweep/sweep/figure methods",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    with Session(policy, reuse_pool=False) as session:
        yield session, override
