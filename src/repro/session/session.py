"""The `Session` facade: process state + an `ExecutionPolicy`, one object.

A Session is what the free functions of :mod:`repro.experiments` never
had: a place for state that should outlive a single call.

* a persistent :class:`~repro.runtime.PreparedDataCache` — prepared
  arrays and fold-level moment blocks reuse across *calls*, not just
  across the algorithms of one panel (bit-exactly: the cache only ever
  shares identical values);
* a lazily created, **reusable executor pool** — the legacy path spun a
  fresh thread/process pool up inside every ``run_plan`` call; a Session
  holds one :class:`~repro.runtime.PooledThreadExecutor` /
  :class:`~repro.runtime.PooledProcessExecutor` and reuses it until
  :meth:`Session.close`;
* a dataset registry — :meth:`Session.dataset` loads and caches the
  census tables at the policy's scale.

Every entry point reads its execution knobs from the session's frozen
:class:`~repro.session.ExecutionPolicy` instead of a threaded kwarg blob;
protocol-level arguments (which algorithm, which dataset, which epsilon)
stay per-call.  Results are bitwise identical to the legacy free
functions at every policy — asserted by ``tests/session/``.

Usage::

    from repro.session import ExecutionPolicy, Session

    with Session(ExecutionPolicy(executor="process", tile_size=1)) as s:
        us = s.dataset("us")
        point = s.evaluate("FM", us, "linear", dims=14, epsilon=0.8)
        panel = s.evaluate_panel(["FM", "DPME"], us, "linear", dims=14,
                                 epsilon=0.8)
        sweep = s.figure("figure6", us, task="linear")

``Session()`` with no arguments resolves its policy from the environment
(:meth:`ExecutionPolicy.resolve`), which is how ``REPRO_*`` variables
configure an unmodified CLI invocation end to end.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Mapping, Sequence

from ..baselines.base import Task
from ..data.census import load_brazil, load_us
from ..data.datasets import CensusDataset
from ..exceptions import ExperimentError
from ..faults import RetryPolicy, make_injector, use_injector
from ..obs import make_recorder, use_recorder
from ..experiments.config import DEFAULT_DIMENSIONALITY, ScalePreset
from ..experiments.figures import SweepResult, _accuracy_sweep_impl
from ..experiments.harness import (
    EvaluationResult,
    _evaluate_algorithm_impl,
    _evaluate_algorithms_impl,
    _evaluate_fm_budget_sweep_impl,
)
from ..runtime import (
    CellExecutor,
    PooledProcessExecutor,
    PooledThreadExecutor,
    PreparedDataCache,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_backend,
    use_backend,
)
from .policy import ExecutionPolicy
from .registry import run_figure

__all__ = ["Session"]

_COUNTRY_LOADERS = {"us": load_us, "brazil": load_brazil}

#: Sentinel distinguishing "argument omitted" from an explicit ``None``.
_UNSET = object()


class Session:
    """A long-lived execution context over one :class:`ExecutionPolicy`.

    Parameters
    ----------
    policy:
        The execution policy; ``None`` resolves one from the environment
        (``REPRO_*`` variables / ``REPRO_POLICY_FILE``) over the class
        defaults.
    reuse_pool:
        With ``True`` (default) the session holds one persistent
        thread/process pool across calls.  ``False`` restores the legacy
        one-shot lifecycle — a fresh pool per ``run_plan`` call, which
        for processes also restores fork-time copy-on-write sharing; the
        compatibility shims use this so deprecated entry points execute
        exactly as before.
    **overrides:
        Policy fields to :meth:`~ExecutionPolicy.derive` over ``policy``
        (``Session(executor="thread", tile_size=1)`` is shorthand).
    """

    def __init__(
        self,
        policy: ExecutionPolicy | None = None,
        *,
        reuse_pool: bool = True,
        **overrides,
    ) -> None:
        base = ExecutionPolicy.resolve() if policy is None else policy
        self.policy = base.derive(**overrides) if overrides else base
        self._reuse_pool = bool(reuse_pool)
        self._prepared_cache = PreparedDataCache()
        self._executor: CellExecutor | None = None
        self._datasets: dict[tuple[str, int | None], CensusDataset] = {}
        self._recorder = make_recorder(self.policy.telemetry)
        self._injector = make_injector(self.policy.faults)
        # Resolved eagerly so a missing optional backend (torch) fails at
        # construction, not mid-sweep.
        self._backend = get_backend(self.policy.backend)
        # Resources registered via adopt(), torn down LIFO by close().
        self._adopted: list = []

    # ------------------------------------------------------------------
    # Owned process state
    # ------------------------------------------------------------------
    @property
    def prepared_cache(self) -> PreparedDataCache:
        """The session-lifetime prepared-data cache."""
        return self._prepared_cache

    @property
    def recorder(self):
        """The session's telemetry recorder (no-op when telemetry is off).

        Recording accumulates across calls for the session's lifetime —
        one recorder observes every entry point, which is what makes
        cross-call effects (cache reuse, pool reuse) visible in the
        counters.
        """
        return self._recorder

    def telemetry_summary(self) -> dict:
        """Aggregated counters/gauges/span stats recorded so far."""
        return self._recorder.summary()

    def write_trace(self, path: str | Path) -> Path:
        """Serialize the recorded trace to a JSONL file (see ``repro.obs``).

        Requires ``telemetry`` of ``"summary"`` (aggregates only) or
        ``"trace"`` (full span events); the meta line embeds the canonical
        policy so a trace is self-describing.
        """
        if not self._recorder.recording:
            raise ExperimentError(
                "telemetry is 'off'; construct the Session with "
                "telemetry='summary' or 'trace' to record a trace"
            )
        return self._recorder.write_jsonl(path, meta={"policy": self.policy.to_dict()})

    @property
    def injector(self):
        """The session's fault injector (the shared no-op when unconfigured)."""
        return self._injector

    @property
    def backend(self):
        """The session's resolved array backend (``policy.backend``)."""
        return self._backend

    def executor(self) -> CellExecutor:
        """The session's executor (created lazily, reused across calls)."""
        if self._executor is None:
            kind = self.policy.executor
            workers = self.policy.max_workers
            if kind == "serial":
                self._executor = SerialExecutor()
            elif kind == "thread":
                cls = PooledThreadExecutor if self._reuse_pool else ThreadExecutor
                self._executor = cls(workers)
            else:
                retry = RetryPolicy(
                    max_retries=self.policy.max_retries,
                    tile_timeout=self.policy.tile_timeout,
                    failure_mode=self.policy.failure_mode,
                )
                cls = PooledProcessExecutor if self._reuse_pool else ProcessExecutor
                self._executor = cls(workers, retry=retry)
        return self._executor

    def dataset(
        self, country: str, max_records: int | None = _UNSET
    ) -> CensusDataset:
        """Load (and cache) a census table at the policy's scale.

        ``max_records`` overrides the policy preset's cardinality cap;
        pass ``None`` explicitly for the paper's full table.
        """
        try:
            loader = _COUNTRY_LOADERS[country]
        except KeyError:
            raise ExperimentError(
                f"unknown country {country!r}; expected one of "
                f"{sorted(_COUNTRY_LOADERS)}"
            ) from None
        records = (
            self.policy.preset.max_records if max_records is _UNSET else max_records
        )
        key = (country, records)
        if key not in self._datasets:
            self._datasets[key] = loader(records) if records is not None else loader()
        return self._datasets[key]

    def clear_caches(self) -> None:
        """Drop the prepared-data cache and dataset registry contents."""
        self._prepared_cache = PreparedDataCache()
        self._datasets.clear()

    def adopt(self, resource):
        """Register a closeable resource for teardown by :meth:`close`.

        Long-lived owners (the serving layer, notebooks) hang journal
        handles, registries and caches off one session; adopting them
        means a single ``close()`` — or the context-manager exit, even an
        exceptional one — releases everything, LIFO, without each call
        site re-implementing teardown ordering.  Returns the resource.
        """
        self._adopted.append(resource)
        return resource

    def close(self) -> None:
        """Shut down the held executor pool and adopted resources (idempotent).

        Teardown is unconditional and never raises: the executor
        reference is cleared *before* its ``close()`` runs, so a pool
        broken by :class:`~repro.exceptions.ExecutorBrokenError` cannot
        stay attached when its shutdown fails, and every adopted resource
        is closed (LIFO) regardless of earlier failures.  Failures are
        counted (``session.close_errors``) instead of propagated — a
        teardown error must never mask the exception that triggered the
        context-manager exit.

        The session stays usable — the next call lazily rebuilds the
        pool — so ``close()`` is a resource release, not a lifecycle end.
        """
        executor, self._executor = self._executor, None
        adopted, self._adopted = self._adopted, []
        failures = 0
        if executor is not None and hasattr(executor, "close"):
            try:
                executor.close()
            except Exception:
                failures += 1
        for resource in reversed(adopted):
            closer = getattr(resource, "close", None)
            if closer is None:
                continue
            try:
                closer()
            except Exception:
                failures += 1
        if failures:
            self._recorder.counter("session.close_errors", failures)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Policy plumbing
    # ------------------------------------------------------------------
    def _point_runtime(self) -> str:
        """The policy runtime as a point-evaluation mode."""
        runtime = self.policy.runtime
        if runtime == "auto":
            return "batched"
        if runtime == "engine":
            raise ExperimentError(
                "runtime='engine' applies only to budget sweeps; use "
                "'batched' or 'percell' for point evaluations"
            )
        return runtime

    def _resolved(self, preset, sampling_rate, seed):
        """Fill protocol arguments from the policy where omitted."""
        return (
            self.policy.preset if preset is None else preset,
            self.policy.sampling_rate if sampling_rate is None else sampling_rate,
            self.policy.seed if seed is None else seed,
        )

    def _warn_inapplicable(self, entry: str, *, shards_apply: bool) -> None:
        """Warn when a non-default policy field cannot reach this entry.

        The sweep/figure protocols pin every non-swept Table-2 parameter
        at its paper default (sampling rate 1.0 unless it *is* the swept
        axis), and only the budget figures' FM series has a sharded
        statistics pass — silently ignoring a field the user set in the
        policy would misrepresent what ran.
        """
        if self.policy.sampling_rate != 1.0:
            warnings.warn(
                f"{entry} pins non-swept Table-2 parameters at their paper "
                f"defaults; policy sampling_rate="
                f"{self.policy.sampling_rate!r} does not apply here",
                UserWarning,
                stacklevel=3,
            )
        if not shards_apply and self.policy.shards != 1:
            warnings.warn(
                f"{entry} has no sharded-engine path; policy shards="
                f"{self.policy.shards!r} does not apply here",
                UserWarning,
                stacklevel=3,
            )

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def evaluate(
        self,
        algorithm: str,
        dataset: CensusDataset,
        task: Task,
        dims: int = DEFAULT_DIMENSIONALITY,
        epsilon: float = 1.0,
        *,
        preset: ScalePreset | None = None,
        sampling_rate: float | None = None,
        seed: int | None = None,
        algorithm_kwargs: Mapping | None = None,
        executor: str | CellExecutor | None = None,
    ) -> EvaluationResult:
        """Run the repeated-CV protocol for one algorithm at one point.

        The session equivalent of the legacy ``evaluate_algorithm``:
        execution comes from the policy (and the session's cache/pool),
        protocol arguments stay per-call with policy-backed defaults.
        """
        with use_recorder(self._recorder), use_injector(self._injector), use_backend(
            self._backend
        ), self._recorder.span(
            "session.evaluate", algorithm=algorithm, task=task
        ):
            return _evaluate_algorithm_impl(
                algorithm,
                dataset,
                task,
                dims,
                epsilon,
                *self._resolved(preset, sampling_rate, seed),
                algorithm_kwargs=algorithm_kwargs,
                runtime=self._point_runtime(),
                executor=self.executor() if executor is None else executor,
                tile_size=self.policy.tile_size,
                stream_version=self.policy.stream_version,
                prepared_cache=self._prepared_cache,
            )

    def evaluate_panel(
        self,
        algorithms: Sequence[str],
        dataset: CensusDataset,
        task: Task,
        dims: int = DEFAULT_DIMENSIONALITY,
        epsilon: float = 1.0,
        *,
        preset: ScalePreset | None = None,
        sampling_rate: float | None = None,
        seed: int | None = None,
        executor: str | CellExecutor | None = None,
    ) -> dict[str, EvaluationResult]:
        """Evaluate an algorithm panel as one grouped run (keyed by name)."""
        with use_recorder(self._recorder), use_injector(self._injector), use_backend(
            self._backend
        ), self._recorder.span(
            "session.evaluate_panel", algorithms=list(algorithms), task=task
        ):
            return _evaluate_algorithms_impl(
                algorithms,
                dataset,
                task,
                dims,
                epsilon,
                *self._resolved(preset, sampling_rate, seed),
                runtime=self._point_runtime(),
                executor=self.executor() if executor is None else executor,
                tile_size=self.policy.tile_size,
                stream_version=self.policy.stream_version,
                prepared_cache=self._prepared_cache,
            )

    def budget_sweep(
        self,
        dataset: CensusDataset,
        task: Task,
        dims: int = DEFAULT_DIMENSIONALITY,
        epsilons: Sequence[float] = (),
        *,
        preset: ScalePreset | None = None,
        sampling_rate: float | None = None,
        seed: int | None = None,
        post_processing: str = "spectral",
        tight_sensitivity: bool = False,
        runtime: str | None = None,
        executor: str | CellExecutor | None = None,
    ) -> dict[float, EvaluationResult]:
        """FM's one-pass multi-budget protocol run (keyed by epsilon).

        ``runtime`` overrides the policy for this call (budget sweeps
        understand ``"auto"`` and ``"engine"`` beyond the point modes);
        ``policy.shards > 1`` requires an engine-capable runtime, exactly
        as the legacy signature did.
        """
        with use_recorder(self._recorder), use_injector(self._injector), use_backend(
            self._backend
        ), self._recorder.span(
            "session.budget_sweep", task=task, points=len(epsilons)
        ):
            return _evaluate_fm_budget_sweep_impl(
                dataset,
                task,
                dims,
                epsilons,
                *self._resolved(preset, sampling_rate, seed),
                shards=self.policy.shards,
                post_processing=post_processing,
                tight_sensitivity=tight_sensitivity,
                runtime=self.policy.runtime if runtime is None else runtime,
                executor=self.executor() if executor is None else executor,
                tile_size=self.policy.tile_size,
                stream_version=self.policy.stream_version,
                prepared_cache=self._prepared_cache,
            )

    def sweep(
        self,
        dataset: CensusDataset,
        task: Task,
        parameter: str,
        values: Sequence,
        figure: str,
        *,
        preset: ScalePreset | None = None,
        algorithms: Sequence[str] | None = None,
        seed: int | None = None,
        executor: str | CellExecutor | None = None,
    ) -> SweepResult:
        """Evaluate a panel across one Table-2 parameter sweep.

        Non-swept parameters sit at their paper defaults; policy fields
        that cannot apply here (``sampling_rate``, ``shards``) trigger a
        :class:`UserWarning` when set.
        """
        self._warn_inapplicable("Session.sweep", shards_apply=False)
        preset, _, seed = self._resolved(preset, None, seed)
        with use_recorder(self._recorder), use_injector(self._injector), use_backend(
            self._backend
        ), self._recorder.span(
            "session.sweep", parameter=parameter, figure=figure
        ):
            return _accuracy_sweep_impl(
                dataset,
                task,
                parameter,
                tuple(values),
                figure=figure,
                preset=preset,
                algorithms=algorithms,
                seed=seed,
                runtime=self._point_runtime(),
                executor=self.executor() if executor is None else executor,
                tile_size=self.policy.tile_size,
                stream_version=self.policy.stream_version,
                prepared_cache=self._prepared_cache,
            )

    def figure(
        self,
        name: str,
        dataset: CensusDataset,
        task: Task | None = None,
        *,
        preset: ScalePreset | None = None,
        seed: int | None = None,
        values: Sequence | None = None,
        engine: bool | None = None,
        executor: str | CellExecutor | None = None,
    ) -> SweepResult:
        """Run one registered sweep figure (figures 4-9) under the policy.

        Dispatches through :mod:`repro.session.registry` — the single
        driver path the per-figure functions used to duplicate.  On the
        budget figures (6, 9) ``policy.shards`` parallelizes the FM
        series' statistics pass; elsewhere inapplicable policy fields
        trigger a :class:`UserWarning` when set.
        """
        from .registry import figure_spec

        spec = figure_spec(name)
        self._warn_inapplicable(
            f"Session.figure({name!r})", shards_apply=spec.budget_sweep
        )
        preset, _, seed = self._resolved(preset, None, seed)
        with use_recorder(self._recorder), use_injector(self._injector), use_backend(
            self._backend
        ), self._recorder.span(
            "session.figure", figure=name
        ):
            return run_figure(
                name,
                dataset,
                task,
                preset=preset,
                seed=seed,
                runtime=self._point_runtime(),
                executor=self.executor() if executor is None else executor,
                tile_size=self.policy.tile_size,
                stream_version=self.policy.stream_version,
                values=values,
                engine=engine,
                prepared_cache=self._prepared_cache,
                shards=self.policy.shards,
            )
