"""`repro.session` — the unified Session / ExecutionPolicy API.

The canonical way to run this reproduction since PR 5:

* :class:`ExecutionPolicy` — one frozen, validated value for every
  execution knob (runtime, executor + pool width, tiling, stream
  version, scale, sampling rate, seed, shards), with layered resolution
  (explicit > ``REPRO_*`` environment > policy file > defaults), exact
  JSON round-tripping, and ``derive()`` for replace-style derivation.
* :class:`Session` — a facade owning process state across calls: a
  persistent prepared-data cache, a reusable executor pool, and the
  dataset registry; ``evaluate`` / ``evaluate_panel`` / ``budget_sweep``
  / ``sweep`` / ``figure`` are the canonical entry points.

The legacy free functions keep working through deprecation shims
(:mod:`repro.session.compat`) with bitwise-identical results.
"""

from .policy import (
    DEFAULT_STREAM_VERSION,
    POLICY_ENV_VARS,
    POLICY_FILE_ENV,
    ExecutionPolicy,
)
from .registry import FIGURE_SPECS, FigureSpec, figure_spec, run_figure
from .session import Session

__all__ = [
    "DEFAULT_STREAM_VERSION",
    "POLICY_ENV_VARS",
    "POLICY_FILE_ENV",
    "ExecutionPolicy",
    "FIGURE_SPECS",
    "FigureSpec",
    "figure_spec",
    "run_figure",
    "Session",
]
