"""The figure-driver registry: one spec per sweep figure, one dispatch path.

Before sessions, every figure driver (``figure4_dimensionality`` ...
``figure9_time_budget``) repeated an identical pass-through block of
execution kwargs on its way to :func:`~repro.experiments.figures
.accuracy_sweep`.  This registry collapses the six drivers to data: a
:class:`FigureSpec` names the swept Table-2 parameter, its default values,
whether the task is caller-chosen or pinned (the timing figures are
logistic-only, as in the paper), and whether the figure has the one-pass
FM budget-sweep fast path.  :func:`run_figure` is the single execution
path every spec dispatches through — the Session's
:meth:`~repro.session.Session.figure` entry point, the legacy driver
shims, the CLI and the golden-oracle registry all land here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..exceptions import ExperimentError
from ..experiments.config import (
    DIMENSIONALITIES,
    PRIVACY_BUDGETS,
    SAMPLING_RATES,
    ScalePreset,
)
from ..experiments.figures import SweepResult, _accuracy_sweep_impl, _budget_sweep_impl

__all__ = ["FigureSpec", "FIGURE_SPECS", "figure_spec", "run_figure"]


@dataclass(frozen=True)
class FigureSpec:
    """One sweep figure of the paper, as data.

    Attributes
    ----------
    name:
        Figure id (``"figure4"`` ... ``"figure9"``).
    parameter:
        The swept Table-2 parameter.
    values:
        Default sweep values (overridable per call where the legacy driver
        allowed it — the cardinality figures' ``rates``).
    fixed_task:
        ``None`` when the caller chooses the panel task; ``"logistic"``
        for the timing figures ("we only report the results for logistic
        regression").
    budget_sweep:
        Whether the figure sweeps epsilon and therefore has the one-pass
        FM engine/batched fast path (figures 6 and 9).
    kind:
        ``"accuracy"`` or ``"time"`` — which metric the figure plots
        (reporting concern only; both come from the same sweep).
    """

    name: str
    parameter: str
    values: tuple
    fixed_task: str | None
    budget_sweep: bool
    kind: str


FIGURE_SPECS: dict[str, FigureSpec] = {
    spec.name: spec
    for spec in (
        FigureSpec("figure4", "dimensionality", DIMENSIONALITIES, None, False, "accuracy"),
        FigureSpec("figure5", "sampling_rate", SAMPLING_RATES, None, False, "accuracy"),
        FigureSpec("figure6", "epsilon", PRIVACY_BUDGETS, None, True, "accuracy"),
        FigureSpec("figure7", "dimensionality", DIMENSIONALITIES, "logistic", False, "time"),
        FigureSpec("figure8", "sampling_rate", SAMPLING_RATES, "logistic", False, "time"),
        FigureSpec("figure9", "epsilon", PRIVACY_BUDGETS, "logistic", True, "time"),
    )
}


def figure_spec(name: str) -> FigureSpec:
    """Look a figure spec up by id."""
    try:
        return FIGURE_SPECS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown figure {name!r}; expected one of {sorted(FIGURE_SPECS)}"
        ) from None


def run_figure(
    name: str,
    dataset,
    task: str | None,
    *,
    preset: ScalePreset,
    seed: int,
    runtime: str,
    executor,
    tile_size: int | None,
    stream_version: int,
    values: Sequence | None = None,
    engine: bool | None = None,
    prepared_cache=None,
    shards: int = 1,
) -> SweepResult:
    """Execute one registered figure through the shared sweep machinery.

    ``task`` is required unless the spec pins it; ``values`` overrides the
    spec's sweep values (cardinality figures only — the budget figures'
    epsilon grid is part of their identity); ``engine`` selects the
    one-pass FM fast path on budget figures (default on, as the legacy
    drivers had it); ``shards`` parallelizes the FM series' statistics
    pass on budget figures (ignored elsewhere — the caller warns).
    """
    spec = figure_spec(name)
    if spec.fixed_task is not None:
        task = spec.fixed_task
    elif task is None:
        raise ExperimentError(f"{name} needs a task ('linear' or 'logistic')")
    if spec.budget_sweep:
        if values is not None:
            raise ExperimentError(
                f"{name} sweeps the fixed Table-2 budget grid; "
                "custom values are not supported"
            )
        return _budget_sweep_impl(
            dataset,
            task,
            spec.name,
            preset,
            seed,
            engine=True if engine is None else engine,
            runtime=runtime,
            executor=executor,
            tile_size=tile_size,
            stream_version=stream_version,
            prepared_cache=prepared_cache,
            shards=shards,
        )
    if engine is not None:
        raise ExperimentError(f"{name} has no FM budget-sweep path; drop engine=")
    return _accuracy_sweep_impl(
        dataset,
        task,
        spec.parameter,
        tuple(spec.values if values is None else values),
        figure=spec.name,
        preset=preset,
        seed=seed,
        runtime=runtime,
        executor=executor,
        tile_size=tile_size,
        stream_version=stream_version,
        prepared_cache=prepared_cache,
    )
