"""`ExecutionPolicy` — one frozen, validated object for every execution knob.

Four PRs of engine/runtime/verify growth threaded the same execution kwargs
(``runtime=``, ``executor=``, ``tile_size=``, ``stream_version=``,
``shards=``, ``preset=``, ``seed=`` ...) by hand through every harness
entry point, every figure driver, the CLI and the golden-oracle registry.
This module replaces the blob with a single dataclass:

* **frozen** — a policy is a value, safe to share across threads and to
  embed in digests, bench records and reports;
* **validated** — every field is checked at construction, so an invalid
  knob fails where it is written, not deep inside a plan;
* **layered** — :meth:`ExecutionPolicy.resolve` merges, in precedence
  order, explicit values > ``REPRO_*`` environment variables > a JSON
  policy file (``REPRO_POLICY_FILE``) > per-call base defaults > the
  class defaults;
* **serializable** — :meth:`to_dict` / :meth:`from_dict` /
  :meth:`to_json` / :meth:`from_json` round-trip exactly, so the golden
  store and ``BENCH_harness.json`` can record the policy that produced a
  number;
* **derivable** — :meth:`derive` is ``dataclasses.replace`` with
  validation, the one idiom for "this policy, but tiled".

Environment variables (all optional)::

    REPRO_RUNTIME         batched | percell | engine | auto
    REPRO_EXECUTOR        serial | thread | process
    REPRO_MAX_WORKERS     positive int, or "none" (executor default)
    REPRO_TILE_SIZE       positive int, or "none" (eager planning)
    REPRO_STREAM_VERSION  1 | 2
    REPRO_SCALE           smoke | default | full
    REPRO_SAMPLING_RATE   float in (0, 1]
    REPRO_SEED            int
    REPRO_SHARDS          positive int
    REPRO_TELEMETRY       off | summary | trace
    REPRO_FAULTS          fault-plan spec, e.g. "seed=7;worker.crash=0.5x2"
    REPRO_MAX_RETRIES     non-negative int (self-healing retry bound)
    REPRO_TILE_TIMEOUT    positive float seconds, or "none" (no timeout)
    REPRO_FAILURE_MODE    raise | fallback
    REPRO_BACKEND         numpy | torch (array backend of the stacked kernels)
    REPRO_POLICY_FILE     path to a JSON policy file (the file layer)

The ``stream_version`` default flip (ROADMAP) has landed: the
:data:`DEFAULT_STREAM_VERSION` constant below is now ``2`` (the
alias-free derivation), and every session, CLI invocation, legacy shim
and golden group that does not pin a version resolves through it.
Version 1 remains fully supported — pin ``stream_version=1`` to
reproduce the historical streams; the ``*-sv1`` golden groups keep it
under test.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from ..exceptions import ExperimentError
from ..experiments.config import PRESETS, ScalePreset, preset_by_name
from ..faults import FAILURE_MODES, FaultPlan

__all__ = [
    "DEFAULT_STREAM_VERSION",
    "POLICY_ENV_VARS",
    "POLICY_FILE_ENV",
    "ExecutionPolicy",
]

#: The substream-derivation format used when nothing pins one explicitly.
#: 2 is the alias-free derivation (length-prefixed, sentinel-terminated
#: tags); the historical format remains available as ``stream_version=1``
#: and stays pinned-and-tested via the ``*-sv1`` golden groups.
DEFAULT_STREAM_VERSION = 2

#: Environment variable consulted for the policy-file layer.
POLICY_FILE_ENV = "REPRO_POLICY_FILE"

#: field name -> environment variable of the env layer.
POLICY_ENV_VARS: dict[str, str] = {
    "runtime": "REPRO_RUNTIME",
    "executor": "REPRO_EXECUTOR",
    "max_workers": "REPRO_MAX_WORKERS",
    "tile_size": "REPRO_TILE_SIZE",
    "stream_version": "REPRO_STREAM_VERSION",
    "scale": "REPRO_SCALE",
    "sampling_rate": "REPRO_SAMPLING_RATE",
    "seed": "REPRO_SEED",
    "shards": "REPRO_SHARDS",
    "telemetry": "REPRO_TELEMETRY",
    "faults": "REPRO_FAULTS",
    "max_retries": "REPRO_MAX_RETRIES",
    "tile_timeout": "REPRO_TILE_TIMEOUT",
    "failure_mode": "REPRO_FAILURE_MODE",
    "backend": "REPRO_BACKEND",
}

_RUNTIMES = ("batched", "percell", "engine", "auto")
_EXECUTORS = ("serial", "thread", "process")
_TELEMETRY = ("off", "summary", "trace")
#: Mirrors repro.runtime.backend.BACKEND_NAMES (kept literal here so the
#: policy module stays import-light; the backend module re-validates names).
_ARRAY_BACKENDS = ("numpy", "torch")


def _parse_optional_int(field: str, raw: str) -> int | None:
    if raw.strip().lower() in ("", "none", "null"):
        return None
    try:
        return int(raw)
    except ValueError:
        raise ExperimentError(
            f"{POLICY_ENV_VARS[field]}={raw!r} is not an integer (or 'none')"
        ) from None


def _parse_env(field: str, raw: str):
    """Parse one ``REPRO_*`` value into its field's type."""
    if field in ("max_workers", "tile_size"):
        return _parse_optional_int(field, raw)
    if field == "tile_timeout":
        if raw.strip().lower() in ("", "none", "null"):
            return None
        try:
            return float(raw)
        except ValueError:
            raise ExperimentError(
                f"{POLICY_ENV_VARS[field]}={raw!r} is not a number (or 'none')"
            ) from None
    if field == "faults":
        return raw.strip() or None
    if field in ("stream_version", "seed", "shards", "max_retries"):
        try:
            return int(raw)
        except ValueError:
            raise ExperimentError(
                f"{POLICY_ENV_VARS[field]}={raw!r} is not an integer"
            ) from None
    if field == "sampling_rate":
        try:
            return float(raw)
        except ValueError:
            raise ExperimentError(
                f"{POLICY_ENV_VARS[field]}={raw!r} is not a number"
            ) from None
    return raw


@dataclass(frozen=True)
class ExecutionPolicy:
    """Every execution knob of the repeated-CV protocol, as one value.

    Attributes
    ----------
    runtime:
        Cell execution mode: ``"batched"`` (stacked LAPACK kernels) or
        ``"percell"`` (the reference oracle) for point evaluations;
        budget sweeps additionally understand ``"engine"`` (the streaming
        sufficient-statistics path) and ``"auto"`` (batched unless shards
        or a non-spectral repair force the engine).
    executor:
        Where parallel work runs: ``"serial"``, ``"thread"`` or
        ``"process"``.  A long-lived :class:`~repro.session.Session`
        keeps one pool of this kind alive across calls.
    max_workers:
        Pool width (``None`` = the executor's default).
    tile_size:
        Repetitions resident per tile (``None`` = eager planning).
    stream_version:
        :func:`~repro.privacy.rng.derive_substream` format; defaults to
        :data:`DEFAULT_STREAM_VERSION`.
    scale:
        Named compute preset (``smoke`` / ``default`` / ``full``); the
        :attr:`preset` property resolves it.  Call sites may still pass a
        custom :class:`~repro.experiments.config.ScalePreset` explicitly.
    sampling_rate:
        Table-2 sampling rate applied to the preset-capped cardinality.
    seed:
        Base seed every cell substream derives from.
    shards:
        Parallel ingestion shards of the streaming-engine path (budget
        sweeps only; ``shards > 1`` implies ``runtime="engine"``).
    telemetry:
        Observability level (see :mod:`repro.obs`): ``"off"`` installs
        the no-op recorder (hot paths pay one null-check), ``"summary"``
        aggregates counters/gauges/span stats, ``"trace"`` additionally
        retains every span for JSONL export.  Telemetry never changes
        scores or golden digests.
    faults:
        Deterministic fault-injection plan in the ``REPRO_FAULTS``
        grammar (see :meth:`repro.faults.FaultPlan.parse`), e.g.
        ``"seed=7;worker.crash=0.5x2"``.  ``None`` (the default) injects
        nothing.  Injection is chaos-testing machinery: recovery must
        leave scores and golden digests bitwise unchanged.
    max_retries:
        Self-healing retry bound: how many *zero-progress* rounds the
        process executors tolerate (pool rebuilds + re-submission of only
        the failed tiles) before giving up.  ``0`` disables retries.
    tile_timeout:
        Per-tile wall-clock timeout in seconds for process executors
        (``None`` = no timeout).  A tile exceeding it is treated as a
        hung worker: the pool is rebuilt and the tile retried.
    failure_mode:
        What exhausting ``max_retries`` means: ``"raise"`` propagates
        :class:`~repro.exceptions.ExecutorBrokenError`; ``"fallback"``
        lets the runner degrade process → thread → serial, resuming from
        the completed prefix.
    backend:
        Array backend of the stacked kernels (see
        :mod:`repro.runtime.backend`): ``"numpy"`` (the bit-identity
        reference, default) or ``"torch"`` (optional extra; CUDA when
        available, certified numerically conforming — never bit-identical
        — by ``python -m repro verify --tier numeric``).  Noise is always
        drawn by the keyed numpy substreams regardless of backend.
    """

    runtime: str = "batched"
    executor: str = "serial"
    max_workers: int | None = None
    tile_size: int | None = None
    stream_version: int = DEFAULT_STREAM_VERSION
    scale: str = "default"
    sampling_rate: float = 1.0
    seed: int = 0
    shards: int = 1
    telemetry: str = "off"
    faults: str | None = None
    max_retries: int = 2
    tile_timeout: float | None = None
    failure_mode: str = "raise"
    backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.runtime not in _RUNTIMES:
            raise ExperimentError(
                f"runtime must be one of {_RUNTIMES}, got {self.runtime!r}"
            )
        if self.executor not in _EXECUTORS:
            raise ExperimentError(
                f"executor must be one of {_EXECUTORS}, got {self.executor!r}"
            )
        for field in ("max_workers", "tile_size"):
            value = getattr(self, field)
            if value is not None and (not isinstance(value, int) or value < 1):
                raise ExperimentError(
                    f"{field} must be a positive integer or None, got {value!r}"
                )
        if self.stream_version not in (1, 2):
            raise ExperimentError(
                f"stream_version must be 1 or 2, got {self.stream_version!r}"
            )
        if self.scale not in PRESETS:
            raise ExperimentError(
                f"scale must be one of {sorted(PRESETS)}, got {self.scale!r}"
            )
        if not isinstance(self.sampling_rate, (int, float)) or not (
            0.0 < float(self.sampling_rate) <= 1.0
        ):
            raise ExperimentError(
                f"sampling_rate must be in (0, 1], got {self.sampling_rate!r}"
            )
        if not isinstance(self.seed, int):
            raise ExperimentError(f"seed must be an integer, got {self.seed!r}")
        if not isinstance(self.shards, int) or self.shards < 1:
            raise ExperimentError(
                f"shards must be a positive integer, got {self.shards!r}"
            )
        if self.telemetry not in _TELEMETRY:
            raise ExperimentError(
                f"telemetry must be one of {_TELEMETRY}, got {self.telemetry!r}"
            )
        if self.faults is not None:
            if not isinstance(self.faults, str):
                raise ExperimentError(
                    f"faults must be a plan string or None, got {self.faults!r}"
                )
            try:
                FaultPlan.parse(self.faults)
            except ValueError as error:
                raise ExperimentError(
                    f"invalid faults plan {self.faults!r}: {error}"
                ) from None
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ExperimentError(
                f"max_retries must be a non-negative integer, got "
                f"{self.max_retries!r}"
            )
        if self.tile_timeout is not None and (
            not isinstance(self.tile_timeout, (int, float))
            or not float(self.tile_timeout) > 0.0
        ):
            raise ExperimentError(
                f"tile_timeout must be a positive number or None, got "
                f"{self.tile_timeout!r}"
            )
        if self.failure_mode not in FAILURE_MODES:
            raise ExperimentError(
                f"failure_mode must be one of {FAILURE_MODES}, got "
                f"{self.failure_mode!r}"
            )
        if self.backend not in _ARRAY_BACKENDS:
            raise ExperimentError(
                f"backend must be one of {_ARRAY_BACKENDS}, got {self.backend!r}"
            )

    # ------------------------------------------------------------------
    # Derivation & resolution
    # ------------------------------------------------------------------
    def derive(self, **changes) -> "ExecutionPolicy":
        """This policy with some fields replaced (and re-validated)."""
        try:
            return dataclasses.replace(self, **changes)
        except TypeError:
            known = {f.name for f in dataclasses.fields(self)}
            unknown = sorted(set(changes) - known)
            raise ExperimentError(
                f"unknown policy field(s) {unknown}; expected a subset of "
                f"{sorted(known)}"
            ) from None

    @classmethod
    def resolve(
        cls,
        explicit: Mapping | None = None,
        base: "ExecutionPolicy | None" = None,
        env: Mapping[str, str] | None = None,
        policy_file: str | Path | None = None,
    ) -> "ExecutionPolicy":
        """Layered policy resolution: explicit > env > file > base defaults.

        Parameters
        ----------
        explicit:
            Field values the caller pinned (CLI flags, constructor
            kwargs).  Entries that are ``None`` mean "not specified" and
            fall through to the lower layers — the one field where
            ``None`` is itself meaningful (``tile_size``; also
            ``max_workers``) is therefore *unset-able* here only via the
            lower layers' ``"none"`` spelling.
        base:
            The defaults layer (e.g. the CLI's smoke-scale default);
            class defaults when omitted.
        env:
            Environment mapping (default ``os.environ``); only the
            ``REPRO_*`` variables in :data:`POLICY_ENV_VARS` are read.
        policy_file:
            JSON file of field values; default: the ``REPRO_POLICY_FILE``
            environment variable, if set.
        """
        environ = os.environ if env is None else env
        values: dict = {}
        if policy_file is None:
            policy_file = environ.get(POLICY_FILE_ENV) or None
        if policy_file is not None:
            values.update(cls._load_policy_file(policy_file))
        for field, variable in POLICY_ENV_VARS.items():
            raw = environ.get(variable)
            if raw is not None:
                values[field] = _parse_env(field, raw)
        if explicit:
            known = {f.name for f in dataclasses.fields(cls)}
            unknown = sorted(set(explicit) - known)
            if unknown:
                raise ExperimentError(
                    f"unknown policy field(s) {unknown}; expected a subset "
                    f"of {sorted(known)}"
                )
            values.update({k: v for k, v in explicit.items() if v is not None})
        return (base or cls()).derive(**values)

    @staticmethod
    def _load_policy_file(path: str | Path) -> dict:
        try:
            raw = Path(path).read_text()
        except OSError as error:
            raise ExperimentError(f"cannot read policy file {path}: {error}") from None
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ExperimentError(
                f"policy file {path} is not valid JSON: {error}"
            ) from None
        if not isinstance(data, dict):
            raise ExperimentError(
                f"policy file {path} must hold a JSON object of policy fields"
            )
        known = {f.name for f in dataclasses.fields(ExecutionPolicy)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ExperimentError(
                f"policy file {path} has unknown field(s) {unknown}; "
                f"expected a subset of {sorted(known)}"
            )
        return data

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-safe mapping of every field (round-trips exactly)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExecutionPolicy":
        """Rebuild a policy from :meth:`to_dict` output (validated)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ExperimentError(
                f"unknown policy field(s) {unknown}; expected a subset of "
                f"{sorted(known)}"
            )
        return cls(**dict(data))

    def to_json(self, indent: int | None = None) -> str:
        """The policy as a JSON object string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExecutionPolicy":
        """Parse :meth:`to_json` output back into a validated policy."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ExperimentError(f"policy JSON is malformed: {error}") from None
        if not isinstance(data, dict):
            raise ExperimentError("policy JSON must be an object of policy fields")
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Convenience views
    # ------------------------------------------------------------------
    @property
    def preset(self) -> ScalePreset:
        """The :class:`ScalePreset` named by :attr:`scale`."""
        return preset_by_name(self.scale)

    def describe(self) -> str:
        """A compact one-line rendering (for warnings and reports)."""
        fields = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}"
            for f in dataclasses.fields(self)
            if getattr(self, f.name) != f.default
        )
        return f"ExecutionPolicy({fields})"
