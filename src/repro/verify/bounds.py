"""Exact binomial confidence machinery for the conformance auditor.

The auditor observes event counts ``k`` out of ``n`` trials on each of two
neighboring databases and needs a *certified lower bound* on the true
privacy loss ``log(p_a / p_b)`` — a plug-in ratio of empirical frequencies
can exceed the nominal budget by chance, so a violation verdict must rest
on confidence intervals, not point estimates.

Clopper–Pearson intervals are the exact choice: they invert the binomial
test directly, guarantee coverage at every ``(k, n)`` (no normal
approximation that degrades in the tails the DP supremum lives in), and
reduce to closed forms at the boundary counts the auditor actually hits
(``k = 0`` on a disjoint support).  The quantiles of the Beta distribution
they need are computed here from scratch — a continued-fraction regularized
incomplete beta plus bisection — so the library keeps its numpy-only
dependency footprint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "BinomialBounds",
    "regularized_incomplete_beta",
    "beta_ppf",
    "clopper_pearson",
    "log_ratio_lower_bound",
]

#: Continued-fraction convergence tolerance (well below the statistical
#: resolution of any audit trial count).
_TOLERANCE = 1e-12
_MAX_ITERATIONS = 300


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """``I_x(a, b)`` — the CDF of the Beta(a, b) distribution at ``x``.

    Evaluated with the Lentz continued fraction, using the symmetry
    ``I_x(a, b) = 1 - I_{1-x}(b, a)`` to stay in the rapidly converging
    region ``x < (a + 1) / (a + b + 2)``.
    """
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"x must be in [0, 1], got {x!r}")
    if a <= 0.0 or b <= 0.0:
        raise ValueError(f"a and b must be positive, got a={a!r}, b={b!r}")
    if x == 0.0:
        return 0.0
    if x == 1.0:
        return 1.0
    log_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(log_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(a, b, x) / a
    return 1.0 - front * _beta_continued_fraction(b, a, 1.0 - x) / b


def _beta_continued_fraction(a: float, b: float, x: float) -> float:
    """Lentz evaluation of the incomplete-beta continued fraction."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, _MAX_ITERATIONS + 1):
        m2 = 2 * m
        # Even step.
        numerator = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        # Odd step.
        numerator = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _TOLERANCE:
            return h
    return h  # converged to machine noise for every realistic (a, b)


def beta_ppf(q: float, a: float, b: float) -> float:
    """Quantile function of Beta(a, b), by bisection on the exact CDF.

    Bisection (rather than Newton) keeps the inversion unconditionally
    convergent at the extreme quantiles Clopper–Pearson bounds request
    (``q`` near ``alpha / num_events`` after a Bonferroni correction).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q!r}")
    if q == 0.0:
        return 0.0
    if q == 1.0:
        return 1.0
    lo, hi = 0.0, 1.0
    for _ in range(200):  # 2^-200 < any representable interval
        mid = 0.5 * (lo + hi)
        if regularized_incomplete_beta(a, b, mid) < q:
            lo = mid
        else:
            hi = mid
        if hi - lo <= _TOLERANCE * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class BinomialBounds:
    """A one-sided-pair Clopper–Pearson interval for a binomial proportion.

    ``lower`` and ``upper`` are each individually valid one-sided bounds at
    ``confidence``; using both simultaneously costs a union bound (the
    auditor accounts for that in its Bonferroni budget).
    """

    k: int
    n: int
    confidence: float
    lower: float
    upper: float


def clopper_pearson(k: int, n: int, confidence: float = 0.95) -> BinomialBounds:
    """Exact one-sided binomial bounds for ``k`` successes in ``n`` trials.

    The lower bound solves ``P[Bin(n, p) >= k] = 1 - confidence`` (0 when
    ``k = 0``); the upper bound solves ``P[Bin(n, p) <= k] = 1 -
    confidence`` (1 when ``k = n``).  Both reduce to Beta quantiles.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 0 <= k <= n:
        raise ValueError(f"k must be in [0, n], got k={k}, n={n}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence!r}")
    alpha = 1.0 - confidence
    lower = 0.0 if k == 0 else beta_ppf(alpha, k, n - k + 1)
    upper = 1.0 if k == n else beta_ppf(confidence, k + 1, n - k)
    return BinomialBounds(k=int(k), n=int(n), confidence=confidence, lower=lower, upper=upper)


def log_ratio_lower_bound(
    k_a: int, n_a: int, k_b: int, n_b: int, confidence: float = 0.95
) -> float:
    """Certified lower bound on ``log(p_a / p_b)`` from two event counts.

    Splits the error budget evenly between the lower bound on ``p_a`` and
    the upper bound on ``p_b``; the result holds with probability at least
    ``confidence`` by the union bound.  Returns ``-inf`` when ``k_a = 0``
    (no lower evidence at all).
    """
    half = 1.0 - (1.0 - confidence) / 2.0
    p_a_lower = clopper_pearson(k_a, n_a, half).lower
    p_b_upper = clopper_pearson(k_b, n_b, half).upper
    if p_a_lower <= 0.0:
        return -math.inf
    return math.log(p_a_lower) - math.log(p_b_upper)
