"""Registry-driven mechanism conformance auditing.

:mod:`repro.privacy.audit` measures the privacy loss of one hand-wired
mechanism; this module generalizes it into a harness that audits *every*
privacy-claiming algorithm in the baselines registry through one uniform
pipeline:

1. a :class:`MechanismSpec` names the mechanism, how to build its black-box
   release callable at a given ``(task, epsilon)``, and how many trials a
   meaningful audit needs (per-fit cost varies by orders of magnitude
   between FM and the histogram baselines);
2. the release is run ``trials`` times on each side of a validated
   :class:`~repro.verify.neighbors.NeighborPair`;
3. the outputs are compared over one-sided threshold events, producing both
   the plug-in ``epsilon_hat`` of :func:`~repro.privacy.audit.
   estimate_privacy_loss` *and* a sample-split, simultaneous
   Clopper–Pearson confidence **lower bound** on the true loss (events
   chosen on one half of the trials, counts certified on the held-out
   half, Bonferroni across the chosen events) — the quantity a violation
   verdict can rest on: with probability ``confidence`` a correct
   ``epsilon``-DP mechanism satisfies ``epsilon_lower <= epsilon``, no
   slack factor needed.

The module also ships :func:`faulty_fm_release` — three deliberately
broken FM variants (noise scaled ``Delta/(2 epsilon)``, a dropped Laplace
draw, an understated sensitivity) — used by the test suite and the tier-1
CLI to prove the auditor flags real bugs, not just that it stays quiet on
correct code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..baselines.base import (
    Task,
    algorithm_is_private,
    algorithm_names,
    canonical_algorithm_name,
    make_algorithm,
)
from ..core.mechanism import FunctionalMechanism
from ..exceptions import ExperimentError
from ..experiments.harness import objective_for
from ..privacy.audit import estimate_privacy_loss
from ..privacy.rng import RngLike, ensure_rng
from .bounds import log_ratio_lower_bound
from .neighbors import NeighborPair, worst_case_pair

__all__ = [
    "Release",
    "MechanismSpec",
    "ConformanceReport",
    "register_mechanism",
    "conformance_registry",
    "audit_release",
    "audit_spec",
    "audit_all",
    "faulty_fm_release",
]

#: A black-box mechanism release: packed database -> one scalar output.
Release = Callable[[np.ndarray, np.random.Generator], float]

#: How many of the most extreme selection-half events are carried forward
#: to certification per (side, direction).  Larger values widen the
#: Bonferroni correction without finding meaningfully sharper events (the
#: supremum lives in a contiguous threshold region).
_TOP_EVENTS = 16


def _unpack(db: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    return db[:, :-1], db[:, -1]


@dataclass(frozen=True)
class MechanismSpec:
    """How to audit one privacy-claiming mechanism.

    Attributes
    ----------
    name:
        Registry display name (e.g. ``"FM"``).
    tasks:
        Tasks the mechanism supports; the first is the audit default.
    build_release:
        ``(task, epsilon) -> release`` factory.  The release must be
        stateless across calls apart from the generator it is handed.
    default_trials:
        Trials per database giving a usable estimate at this mechanism's
        per-fit cost (cheap coefficient releases afford more than full
        histogram pipelines).
    dim:
        Dimensionality of the audit databases (1 keeps fits fast and the
        released scalar maximally sensitive to the replaced tuple).
    calibrated_epsilon:
        Optional ``(pair, task, epsilon) -> float``: the largest loss a
        *correctly calibrated* implementation can exhibit on this pair's
        audited release.  The Lemma-1 ``Delta`` is an upper bound over the
        whole domain, so on any concrete pair a correct mechanism realizes
        only a fraction of the budget (at ``d = 1`` the worst pair moves
        the released coefficient by ``Delta / 2`` exactly — which means a
        factor-of-two noise bug lands *at* the nominal envelope and is
        black-box undetectable against it).  Declaring the pair-calibrated
        loss makes the audit sharp: a correct mechanism stays under it,
        the classic ``Delta / (2 epsilon)`` slip certifiably exceeds it.
        ``None`` falls back to the plain DP envelope (all the registry can
        honestly claim for black-box baselines).
    """

    name: str
    tasks: tuple[Task, ...]
    build_release: Callable[[Task, float], Release]
    default_trials: int = 20_000
    dim: int = 1
    calibrated_epsilon: Callable[[NeighborPair, Task, float], float] | None = None


@dataclass(frozen=True)
class ConformanceReport:
    """Outcome of one mechanism audit on one neighboring pair.

    ``epsilon_lower`` is the certified part: a sample-split, simultaneous
    (Bonferroni over the certified events) Clopper–Pearson lower
    confidence bound on the true privacy loss.  ``epsilon_hat`` is the
    plug-in point estimate, reported for context — it carries estimation
    noise and may exceed the nominal budget without indicating a bug.

    ``calibrated_epsilon <= nominal_epsilon`` is the spec-declared loss a
    correct implementation can exhibit on *this* pair (the DP envelope
    when the spec declares nothing); :attr:`passed` gates on it, which is
    what lets the auditor flag calibration bugs whose inflated loss still
    hides inside the analytic bound's domain-wide slack.
    """

    mechanism: str
    task: Task
    pair: str
    nominal_epsilon: float
    calibrated_epsilon: float
    epsilon_hat: float
    epsilon_lower: float
    confidence: float
    trials: int
    events: int

    @property
    def passed(self) -> bool:
        """Certified loss within what a correct implementation can show."""
        return self.epsilon_lower <= self.calibrated_epsilon

    @property
    def flagged(self) -> bool:
        """The harness's verdict: certified excess loss on this pair."""
        return not self.passed

    @property
    def violation(self) -> bool:
        """Certified violation of the *DP guarantee itself*: even the
        lower bound exceeds the nominal budget."""
        return self.epsilon_lower > self.nominal_epsilon


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
_SPECS: dict[str, MechanismSpec] = {}


def register_mechanism(spec: MechanismSpec, overwrite: bool = False) -> MechanismSpec:
    """Add a mechanism to the conformance registry (keyed lower-case)."""
    key = spec.name.lower()
    if key in _SPECS and not overwrite:
        raise ExperimentError(f"mechanism {spec.name!r} is already registered")
    _SPECS[key] = spec
    return spec


def conformance_registry() -> dict[str, MechanismSpec]:
    """Name -> spec for every auditable (privacy-claiming) mechanism."""
    return {spec.name: spec for spec in _SPECS.values()}


def _fm_coefficient_release(task: Task, epsilon: float) -> Release:
    """FM audited at its sharpest point: the raw noisy linear coefficient.

    Releasing a coefficient before any post-processing gives the audit the
    cleanest view of Algorithm 1's calibration; the minimizer released by
    the full estimator is post-processing of the same noisy vector.
    """

    def release(db: np.ndarray, gen: np.random.Generator) -> float:
        X, y = _unpack(db)
        objective = objective_for(task, X.shape[1])
        mechanism = FunctionalMechanism(epsilon, rng=gen)
        noisy, _ = mechanism.perturb_quadratic(
            objective.aggregate_quadratic(X, y), objective.sensitivity()
        )
        return float(noisy.alpha[0])

    return release


def _baseline_release(name: str, task: Task, epsilon: float) -> Release:
    """Generic black-box release: fit the registered algorithm, output
    its first model coefficient."""

    def release(db: np.ndarray, gen: np.random.Generator) -> float:
        X, y = _unpack(db)
        model = make_algorithm(name, task, epsilon=epsilon, rng=gen)
        model.fit(X, y)
        return float(np.atleast_1d(model.coef_)[0])

    return release


def _fm_pair_calibration(pair: NeighborPair, task: Task, epsilon: float) -> float:
    """The exact loss ceiling of a correct FM on one pair's audited release.

    The released coordinate is ``alpha[0]`` carrying ``Lap(Delta /
    epsilon)`` noise; a location-shifted Laplace's max log-ratio is
    ``|shift| / scale``, so a correct implementation exhibits at most
    ``|alpha_a[0] - alpha_b[0]| * epsilon / Delta`` — a *fraction* of the
    nominal budget on any concrete pair.
    """
    objective = objective_for(task, pair.dim)
    alpha_a = objective.aggregate_quadratic(pair.X_a, pair.y_a).alpha
    alpha_b = objective.aggregate_quadratic(pair.X_b, pair.y_b).alpha
    shift = abs(float(alpha_a[0] - alpha_b[0]))
    return shift * float(epsilon) / objective.sensitivity()


def _federated_release(task: Task, epsilon: float, noise_mode: str) -> Release:
    """Coordinator-view release of the K-party federation (lazy import:
    :mod:`repro.federated` pulls in the engine/runtime stack, which this
    registry module must not load eagerly)."""
    from ..federated.audit import coordinator_release

    return coordinator_release(task, epsilon, parties=3, noise_mode=noise_mode)


def _register_default_specs() -> None:
    register_mechanism(
        MechanismSpec(
            name="FM",
            tasks=("linear", "logistic"),
            build_release=_fm_coefficient_release,
            default_trials=20_000,
            calibrated_epsilon=_fm_pair_calibration,
        )
    )
    # The federated coordinator's released view.  Central mode is
    # distributionally identical to single-box FM (one standardized draw,
    # one merged form), so it must certify the *same* pair-calibrated
    # bounds; local (party) mode sums K local perturbations — the same
    # ceiling applies (the replaced tuple lives in one party; the other
    # parties' noise is post-processing) with K-fold-noise slack under it.
    register_mechanism(
        MechanismSpec(
            name="FM-fed",
            tasks=("linear", "logistic"),
            build_release=lambda task, epsilon: _federated_release(
                task, epsilon, "central"
            ),
            default_trials=12_000,
            calibrated_epsilon=_fm_pair_calibration,
        )
    )
    register_mechanism(
        MechanismSpec(
            name="FM-fed-local",
            tasks=("linear", "logistic"),
            build_release=lambda task, epsilon: _federated_release(
                task, epsilon, "party"
            ),
            default_trials=12_000,
            calibrated_epsilon=_fm_pair_calibration,
        )
    )
    # Per-fit cost calibrates the trial budget: the histogram pipelines
    # (DPME, FP) rebuild a grid + synthetic dataset + regression per trial.
    trial_budget = {"dpme": 3_000, "fp": 3_000}
    for key in algorithm_names():
        if key == "fm" or not algorithm_is_private(key):
            continue
        name = canonical_algorithm_name(key)
        register_mechanism(
            MechanismSpec(
                name=name,
                tasks=("linear", "logistic"),
                build_release=(
                    lambda task, epsilon, _name=name: _baseline_release(
                        _name, task, epsilon
                    )
                ),
                default_trials=trial_budget.get(key, 8_000),
            )
        )


_register_default_specs()


# ----------------------------------------------------------------------
# The auditor
# ----------------------------------------------------------------------
def _certified_lower_bound(
    samples_a: np.ndarray,
    samples_b: np.ndarray,
    confidence: float,
    num_bins: int,
    min_count: int,
) -> tuple[float, int]:
    """Simultaneous CP lower bound on the max log-ratio over threshold events.

    Sample-split for honest coverage: the *selection* halves of the two
    sample arrays choose the threshold events (pooled quantiles, the same
    one-sided families as :func:`~repro.privacy.audit.
    estimate_privacy_loss`, ranked by plug-in log-ratio in each
    direction); the held-out *certification* halves supply the counts the
    Clopper–Pearson bounds invert.  Conditional on the selection half, the
    certified events are a fixed family, so the Bonferroni correction over
    them yields a valid simultaneous guarantee — choosing and bounding
    events on the same draws would not.

    Returns ``(max lower bound, events certified)``.
    """
    a = np.asarray(samples_a, dtype=float).ravel()
    b = np.asarray(samples_b, dtype=float).ravel()
    sel_a, cert_a = a[: a.size // 2], np.sort(a[a.size // 2 :])
    sel_b, cert_b = b[: b.size // 2], np.sort(b[b.size // 2 :])
    pooled = np.sort(np.concatenate([sel_a, sel_b]))
    if pooled[0] == pooled[-1]:
        return 0.0, 1
    quantiles = np.linspace(0.0, 1.0, num_bins + 2)[1:-1]
    thresholds = np.unique(np.quantile(pooled, quantiles))
    sel_a, sel_b = np.sort(sel_a), np.sort(sel_b)
    sel_min_count = max(min_count // 2, 1)

    # One candidate = (side, threshold, direction), chosen on the
    # selection halves only.
    candidates: list[tuple[str, float, bool]] = []
    for side in ("le", "ge"):
        if side == "le":
            count_a = np.searchsorted(sel_a, thresholds, side="right")
            count_b = np.searchsorted(sel_b, thresholds, side="right")
        else:
            count_a = sel_a.size - np.searchsorted(sel_a, thresholds, side="left")
            count_b = sel_b.size - np.searchsorted(sel_b, thresholds, side="left")
        mask = np.maximum(count_a, count_b) >= sel_min_count
        if not mask.any():
            continue
        masked_thresholds = thresholds[mask]
        p_a = (count_a[mask] + 0.5) / (sel_a.size + 1.0)
        p_b = (count_b[mask] + 0.5) / (sel_b.size + 1.0)
        plug_in = np.log(p_a) - np.log(p_b)
        for idx in np.argsort(plug_in)[::-1][:_TOP_EVENTS]:
            candidates.append((side, float(masked_thresholds[idx]), True))
        for idx in np.argsort(plug_in)[:_TOP_EVENTS]:
            candidates.append((side, float(masked_thresholds[idx]), False))
    if not candidates:
        return 0.0, 1

    def cert_count(sorted_samples: np.ndarray, side: str, threshold: float) -> int:
        if side == "le":
            return int(np.searchsorted(sorted_samples, threshold, side="right"))
        return int(
            sorted_samples.size - np.searchsorted(sorted_samples, threshold, side="left")
        )

    alpha = 1.0 - confidence
    event_confidence = 1.0 - alpha / len(candidates)
    best = 0.0
    for side, threshold, a_over_b in candidates:
        k_a = cert_count(cert_a, side, threshold)
        k_b = cert_count(cert_b, side, threshold)
        if a_over_b:
            bound = log_ratio_lower_bound(
                k_a, cert_a.size, k_b, cert_b.size, confidence=event_confidence
            )
        else:
            bound = log_ratio_lower_bound(
                k_b, cert_b.size, k_a, cert_a.size, confidence=event_confidence
            )
        best = max(best, bound)
    return best, len(candidates)


def audit_release(
    release: Release,
    pair: NeighborPair,
    nominal_epsilon: float,
    trials: int,
    confidence: float = 0.95,
    num_bins: int = 200,
    min_count: int = 50,
    rng: RngLike = None,
    mechanism: str = "custom",
    calibrated_epsilon: float | None = None,
) -> ConformanceReport:
    """Audit one black-box release on one validated neighboring pair.

    ``calibrated_epsilon`` tightens the pass criterion to the loss a
    correct implementation can exhibit on this pair (see
    :class:`MechanismSpec`); ``None`` gates on the DP envelope.
    """
    if trials < 2 * min_count:
        raise ExperimentError(
            f"trials={trials} is below the minimum event mass "
            f"(2 * min_count = {2 * min_count})"
        )
    pair.validate()
    gen = ensure_rng(rng)
    db_a, db_b = pair.packed()

    def collect(db: np.ndarray) -> np.ndarray:
        out = np.empty(trials, dtype=float)
        for i in range(trials):
            out[i] = float(release(db, gen))
        return out

    samples_a = collect(db_a)
    samples_b = collect(db_b)
    epsilon_hat, _ = estimate_privacy_loss(samples_a, samples_b, num_bins=num_bins)
    epsilon_lower, events = _certified_lower_bound(
        samples_a, samples_b, confidence, num_bins, min_count
    )
    nominal = float(nominal_epsilon)
    calibrated = nominal if calibrated_epsilon is None else float(calibrated_epsilon)
    return ConformanceReport(
        mechanism=mechanism,
        task=pair.task,
        pair=pair.name,
        nominal_epsilon=nominal,
        calibrated_epsilon=min(calibrated, nominal),
        epsilon_hat=epsilon_hat,
        epsilon_lower=epsilon_lower,
        confidence=confidence,
        trials=trials,
        events=events,
    )


def audit_spec(
    spec: MechanismSpec,
    epsilon: float = 1.0,
    task: Task | None = None,
    trials: int | None = None,
    confidence: float = 0.95,
    pairs: Sequence[NeighborPair] | None = None,
    rng: RngLike = 0,
) -> ConformanceReport:
    """Audit one registered mechanism; returns the sharpest pair's report.

    When several pairs are audited, the per-pair confidence is Bonferroni-
    corrected so the returned (max) lower bound stays simultaneously valid
    at ``confidence``.
    """
    task = task or spec.tasks[0]
    if task not in spec.tasks:
        raise ExperimentError(
            f"mechanism {spec.name!r} supports tasks {spec.tasks}, got {task!r}"
        )
    trials = spec.default_trials if trials is None else int(trials)
    if pairs is None:
        pairs = [worst_case_pair(task, spec.dim)]
    pair_confidence = 1.0 - (1.0 - confidence) / len(pairs)
    release = spec.build_release(task, float(epsilon))
    gen = ensure_rng(rng)
    reports = [
        audit_release(
            release,
            pair,
            nominal_epsilon=epsilon,
            trials=trials,
            confidence=pair_confidence,
            rng=gen,
            mechanism=spec.name,
            calibrated_epsilon=(
                None
                if spec.calibrated_epsilon is None
                else spec.calibrated_epsilon(pair, task, float(epsilon))
            ),
        )
        for pair in pairs
    ]
    return max(reports, key=lambda r: r.epsilon_lower - r.calibrated_epsilon)


def audit_all(
    epsilon: float = 1.0,
    task: Task = "linear",
    trials: int | None = None,
    confidence: float = 0.95,
    mechanisms: Sequence[str] | None = None,
    rng: RngLike = 0,
) -> list[ConformanceReport]:
    """Audit every registered mechanism (or a named subset) on one task.

    ``trials=None`` uses each spec's own budget; an explicit value applies
    uniformly (the CLI's ``--trials``).  Reports come back in registry
    order, one per mechanism.
    """
    registry = conformance_registry()
    if mechanisms is not None:
        lookup = {name.lower(): name for name in registry}
        missing = [m for m in mechanisms if m.lower() not in lookup]
        if missing:
            raise ExperimentError(
                f"unknown mechanisms {missing}; auditable: {sorted(registry)}"
            )
        names = [lookup[m.lower()] for m in mechanisms]
    else:
        names = sorted(registry)
    gen = ensure_rng(rng)
    return [
        audit_spec(
            registry[name],
            epsilon=epsilon,
            task=task,
            trials=trials,
            confidence=confidence,
            rng=gen,
        )
        for name in names
    ]


# ----------------------------------------------------------------------
# Known-bug injection: the auditor's teeth
# ----------------------------------------------------------------------
#: The seeded DP violations the harness must catch (satellite requirement):
#: each is a realistic implementation slip, not a strawman.
FAULT_KINDS = ("half_noise", "dropped_draw", "wrong_sensitivity")


def faulty_fm_release(
    kind: str, epsilon: float, task: Task = "linear", dim: int = 1
) -> Release:
    """A deliberately broken FM release for auditor self-validation.

    ``half_noise``
        Noise scaled ``Delta / (2 epsilon)`` — the classic factor-of-two
        calibration slip; the true loss doubles.
    ``dropped_draw``
        The audited coefficient's Laplace draw never happens: the exact
        aggregated value is released (a deterministic leak; neighboring
        databases produce disjoint outputs).
    ``wrong_sensitivity``
        Calibrates to ``2 d`` instead of Lemma 1's ``2 (d + 1)^2`` — the
        "forgot to square" slip; at ``d = 1`` noise is 4x too small.
    """
    if kind not in FAULT_KINDS:
        raise ExperimentError(f"kind must be one of {FAULT_KINDS}, got {kind!r}")

    def release(db: np.ndarray, gen: np.random.Generator) -> float:
        X, y = _unpack(db)
        objective = objective_for(task, X.shape[1])
        form = objective.aggregate_quadratic(X, y)
        if kind == "dropped_draw":
            return float(form.alpha[0])
        delta = objective.sensitivity()
        if kind == "half_noise":
            delta = delta / 2.0
        else:  # wrong_sensitivity
            delta = 2.0 * X.shape[1]
        mechanism = FunctionalMechanism(epsilon, rng=gen)
        noisy, _ = mechanism.perturb_quadratic(form, delta)
        return float(noisy.alpha[0])

    return release
