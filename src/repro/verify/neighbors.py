"""Neighboring-dataset generators for the conformance auditor.

Differential privacy quantifies over *neighboring databases* — same
cardinality, one tuple replaced.  An audit is only as sharp as the pair it
examines: a replacement that leaves every released coefficient unchanged
measures nothing (e.g. ``(x, y) -> (-x, -y)`` for linear regression, which
preserves all degree-2 monomials).  This module produces pairs that are

* **domain-valid** — every tuple satisfies the objective's declared
  footnote-1 domain (``||x||_2 <= 1``, task target range), checked by
  :meth:`NeighborPair.validate`, so the audited mechanism's sensitivity
  bound genuinely applies;
* **adversarial** — the canonical :func:`worst_case_pair` moves a released
  coefficient by (close to) the per-coordinate maximum, so a calibration
  bug inflates the measured loss as far as the trial budget allows;
* **diverse** — :func:`neighbor_pairs` appends reproducible random pairs,
  guarding against a mechanism that happens to behave on the worst case
  but leaks elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.base import Task
from ..exceptions import DataError
from ..experiments.harness import objective_for
from ..privacy.rng import RngLike, ensure_rng

__all__ = ["NeighborPair", "worst_case_pair", "random_neighbor_pair", "neighbor_pairs"]


@dataclass(frozen=True)
class NeighborPair:
    """Two databases at Hamming distance one, plus provenance.

    ``packed()`` returns each database as a single ``(n, d + 1)`` array
    (features then target column) — the layout the black-box mechanism
    callables consume.
    """

    name: str
    task: Task
    X_a: np.ndarray
    y_a: np.ndarray
    X_b: np.ndarray
    y_b: np.ndarray

    @property
    def dim(self) -> int:
        return int(self.X_a.shape[1])

    def packed(self) -> tuple[np.ndarray, np.ndarray]:
        """The two databases as packed ``(n, d + 1)`` arrays."""
        return (
            np.hstack([self.X_a, self.y_a[:, None]]),
            np.hstack([self.X_b, self.y_b[:, None]]),
        )

    def differing_rows(self) -> np.ndarray:
        """Indices of rows where the two databases disagree."""
        db_a, db_b = self.packed()
        return np.flatnonzero(np.any(db_a != db_b, axis=1))

    def validate(self) -> None:
        """Assert the neighbor relation and the task's domain assumptions.

        Raises
        ------
        DataError
            If the databases differ in shape or in more/fewer than exactly
            one row.
        DomainError
            If either database violates the objective's declared domain
            (propagated from :meth:`RegressionObjective.validate`).
        """
        if self.X_a.shape != self.X_b.shape or self.y_a.shape != self.y_b.shape:
            raise DataError(
                f"neighbor pair {self.name!r}: databases must share a shape, "
                f"got {self.X_a.shape}/{self.y_a.shape} vs "
                f"{self.X_b.shape}/{self.y_b.shape}"
            )
        differing = self.differing_rows()
        if differing.size != 1:
            raise DataError(
                f"neighbor pair {self.name!r}: databases must differ in "
                f"exactly one row, got {differing.size}"
            )
        objective = objective_for(self.task, self.dim)
        objective.validate(self.X_a, self.y_a)
        objective.validate(self.X_b, self.y_b)


def worst_case_pair(task: Task, dim: int = 1) -> NeighborPair:
    """The canonical adversarial pair: flip one tuple's target.

    The replaced tuple sits at a domain vertex (``x = e_1``, the largest
    single coordinate ``||x||_2 <= 1`` admits) and flips its target across
    the task's range — ``1 -> -1`` (linear) or ``1 -> 0`` (logistic) — so
    the released linear coefficient moves by the per-coordinate maximum
    while the quadratic block stays fixed.  A sign flip of the whole tuple
    would instead cancel in every even monomial and audit nothing.
    """
    dim = int(dim)
    if dim < 1:
        raise DataError(f"dim must be >= 1, got {dim}")
    width = 1.0 / np.sqrt(dim)
    base = np.full((3, dim), 0.25 * width)
    base[0] *= 2.0
    base[1] *= 0.5
    X = base.copy()
    X[2] = 0.0
    X[2, 0] = 1.0  # the replaced tuple: a domain vertex
    if task == "linear":
        y_a = np.array([0.5, -0.3, 1.0])
        y_b = y_a.copy()
        y_b[2] = -1.0
    else:
        y_a = np.array([1.0, 0.0, 1.0])
        y_b = y_a.copy()
        y_b[2] = 0.0
    return NeighborPair(
        name=f"worst-case-{task}-d{dim}", task=task,
        X_a=X, y_a=y_a, X_b=X.copy(), y_b=y_b,
    )


def random_neighbor_pair(
    task: Task, dim: int = 1, n: int = 8, rng: RngLike = None, name: str | None = None
) -> NeighborPair:
    """A reproducible random pair: random base database, one row resampled.

    Rows are drawn uniformly from the footnote-1 box ``[0, 1/sqrt(d)]^d``
    (always inside the unit ball); the replaced row additionally resamples
    its target, rejecting draws that happen to tie the original row.
    """
    dim = int(dim)
    if dim < 1:
        raise DataError(f"dim must be >= 1, got {dim}")
    if n < 1:
        raise DataError(f"n must be >= 1, got {n}")
    gen = ensure_rng(rng)
    width = 1.0 / np.sqrt(dim)
    X = gen.uniform(0.0, width, size=(n, dim))
    if task == "linear":
        y = gen.uniform(-1.0, 1.0, size=n)
    else:
        y = (gen.uniform(size=n) < 0.5).astype(float)
    row = int(gen.integers(n))
    X_b, y_b = X.copy(), y.copy()
    while True:
        X_b[row] = gen.uniform(0.0, width, size=dim)
        if task == "linear":
            y_b[row] = gen.uniform(-1.0, 1.0)
        else:
            y_b[row] = 1.0 - y[row]
        if np.any(X_b[row] != X[row]) or y_b[row] != y[row]:
            break
    return NeighborPair(
        name=name or f"random-{task}-d{dim}", task=task,
        X_a=X, y_a=y, X_b=X_b, y_b=y_b,
    )


def neighbor_pairs(
    task: Task, dim: int = 1, random_pairs: int = 2, rng: RngLike = 0
) -> list[NeighborPair]:
    """The auditor's pair battery: the worst case plus random companions.

    Every returned pair has been validated; the list is deterministic for
    an integer ``rng``.
    """
    pairs = [worst_case_pair(task, dim)]
    gen = ensure_rng(rng)
    for i in range(int(random_pairs)):
        pairs.append(
            random_neighbor_pair(
                task, dim, rng=gen, name=f"random-{task}-d{dim}-{i}"
            )
        )
    for pair in pairs:
        pair.validate()
    return pairs
