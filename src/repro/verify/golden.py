"""The golden-oracle registry: digest-pinned figure pipelines.

The runtime's headline guarantee — every execution path produces bitwise
identical scores — was asserted pairwise and ad hoc inside individual
tests.  This module turns it into one declarative conformance table:

* a :class:`GoldenGroup` names a figure pipeline at a fixed seed and
  stream version — everything that *defines* the result;
* a :class:`GoldenConfig` names an execution path — ``{runtime} x
  {executor} x {tile_size}`` — everything that must *not* change it;
* :func:`verify_matrix` runs groups across configs, asserts every config
  in a group produces one digest (the equivalence half of the guarantee,
  valid on any machine), and compares that digest against the committed
  store (the regression half, pinning today's numerics against tomorrow's
  refactor).

Digest semantics: SHA-256 over the structural fields and the exact IEEE-754
bytes of every score statistic of a
:class:`~repro.experiments.figures.SweepResult` — *excluding* fit timings,
which are measurements of the host, not of the algorithm.

Stored digests are a function of the BLAS/LAPACK build executing the
solves, so the store records an environment fingerprint alongside them.
On a fingerprint mismatch the within-group equivalence checks retain full
force while stored-digest comparisons are reported but expected to be
re-pinned (``--regen-golden``) per environment — that is exactly the
"non-blocking then blocking" CI rollout the workflow encodes.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import struct
import sys
import tempfile
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

import numpy as np

from ..data.census import load_us
from ..exceptions import ExperimentError
from ..experiments.config import ScalePreset
from ..experiments.figures import SweepResult
from ..obs import active_recorder
from ..session import ExecutionPolicy, Session

__all__ = [
    "GoldenConfig",
    "GoldenGroup",
    "GroupOutcome",
    "MatrixReport",
    "GOLDEN_CONFIGS",
    "GOLDEN_GROUPS",
    "case_policy",
    "default_store_path",
    "environment_fingerprint",
    "environment_matches",
    "digest_sweep_result",
    "run_golden_case",
    "load_store",
    "save_store",
    "verify_matrix",
]

#: Golden workload scale: small enough that the full 48-case matrix runs in
#: CI minutes, large enough that every runtime path (subsampling, folds,
#: stacked solves, histogram baselines) executes meaningfully.
GOLDEN_PRESET = ScalePreset(name="golden", max_records=600, folds=3, repetitions=2)

#: Records loaded for the golden dataset — deliberately above the preset
#: cap so the per-repetition subsampling path is exercised.
_GOLDEN_RECORDS = 760

#: Figure-5 sampling rates for the golden pipeline (the full Table-2 rate
#: grid would multiply the matrix cost tenfold without covering new code).
_GOLDEN_RATES = (0.5, 1.0)

STORE_FORMAT = 1


@dataclass(frozen=True)
class GoldenConfig:
    """One execution path: must never change any group's digest."""

    runtime: str
    executor: str
    tile_size: int | None

    @property
    def config_id(self) -> str:
        tile = "default" if self.tile_size is None else str(self.tile_size)
        return f"{self.runtime}-{self.executor}-tile{tile}"


@dataclass(frozen=True)
class GoldenGroup:
    """One figure pipeline at a pinned seed/stream version: one digest."""

    group_id: str
    figure: str
    task: str
    stream_version: int
    seed: int


#: The conformance matrix's execution-path axis:
#: {percell, batched} x {serial, thread, process} x {tile_size 1, default}.
GOLDEN_CONFIGS: tuple[GoldenConfig, ...] = tuple(
    GoldenConfig(runtime=runtime, executor=executor, tile_size=tile)
    for runtime in ("batched", "percell")
    for executor in ("serial", "thread", "process")
    for tile in (None, 1)
)

#: The pipeline axis: two figures x both stream-derivation versions.
GOLDEN_GROUPS: tuple[GoldenGroup, ...] = tuple(
    GoldenGroup(
        group_id=f"{figure}-linear-sv{version}",
        figure=figure,
        task="linear",
        stream_version=version,
        seed=seed,
    )
    for figure, seed in (("figure5", 105), ("figure6", 106))
    for version in (1, 2)
)


@lru_cache(maxsize=1)
def _golden_dataset():
    return load_us(_GOLDEN_RECORDS)


def case_policy(
    group: GoldenGroup,
    config: GoldenConfig,
    telemetry: str = "off",
    backend: str = "numpy",
) -> ExecutionPolicy:
    """The exact :class:`ExecutionPolicy` of one matrix cell.

    What *defines* the digest comes from the group (stream version,
    seed); what must *not* change it comes from the config (runtime,
    executor, tiling).  ``telemetry`` is an observation setting, never a
    digest input — the conformance tests run the same cell at ``"off"``
    and ``"trace"`` and assert one digest.  ``backend`` defaults to the
    bit-identity numpy reference; non-default backends are compared by
    the *numeric* tier under certified tolerances, never pinned here.
    The canonical batched-serial-eager cell's policy (telemetry off) is
    what :func:`save_store` embeds next to each pinned digest.
    """
    return ExecutionPolicy(
        runtime=config.runtime,
        executor=config.executor,
        tile_size=config.tile_size,
        stream_version=group.stream_version,
        seed=group.seed,
        telemetry=telemetry,
        backend=backend,
    )


def run_golden_case(
    group: GoldenGroup,
    config: GoldenConfig,
    telemetry: str = "off",
    backend: str = "numpy",
) -> SweepResult:
    """Execute one (group, config) cell of the conformance matrix.

    Runs through a one-case :class:`~repro.session.Session` over
    :func:`case_policy` — the same resolver/dispatch path the CLI uses —
    so a pinned digest is reproducible from its embedded policy alone.
    When ``telemetry`` is on and an outer recorder is active (``repro
    verify --trace``), the case session's recorded activity is merged
    into it so one trace file covers the whole matrix run.
    """
    dataset = _golden_dataset()
    values = _GOLDEN_RATES if group.figure == "figure5" else None
    with Session(
        case_policy(group, config, telemetry=telemetry, backend=backend)
    ) as session:
        result = session.figure(
            group.figure,
            dataset,
            group.task,
            preset=GOLDEN_PRESET,
            values=values,
        )
    outer = active_recorder()
    if outer.recording and session.recorder.recording and outer is not session.recorder:
        outer.merge(session.recorder.export())
    return result


def digest_sweep_result(result: SweepResult) -> str:
    """SHA-256 of a sweep result's structure and exact score bytes.

    Covers figure/panel/task/parameter, the sweep values, the algorithm
    series order, and each point's ``(mean_score, std_score, cells,
    n_train)``.  Fit timings are excluded: they measure the host.
    """
    digest = hashlib.sha256()
    header = f"{result.figure}|{result.panel}|{result.task}|{result.parameter}"
    digest.update(header.encode())
    values = np.asarray(result.values, dtype=float)
    digest.update(struct.pack(f"<{values.size}d", *values))
    for name, points in result.series.items():
        digest.update(name.encode())
        for point in points:
            digest.update(
                struct.pack(
                    "<ddqq",
                    point.mean_score,
                    point.std_score,
                    point.cells,
                    point.n_train,
                )
            )
    return digest.hexdigest()


# ----------------------------------------------------------------------
# The committed store
# ----------------------------------------------------------------------
def default_store_path() -> Path:
    """The committed digest store, shipped inside the package."""
    return Path(__file__).resolve().parent / "golden_digests.json"


def environment_fingerprint() -> dict[str, str]:
    """What the stored digests are a function of, beyond the code."""
    return {
        "python": f"{sys.version_info.major}.{sys.version_info.minor}",
        "numpy": np.__version__,
        "machine": platform.machine(),
        "system": platform.system(),
    }


def _store_checksum(store: dict) -> str:
    """SHA-256 over the canonical JSON of the store's payload keys.

    Canonicalization (sorted keys, fixed separators) makes the checksum a
    function of the *content*, not of the pretty-printing, so a store
    survives being reformatted but not a flipped digest character.
    """
    payload = {key: store[key] for key in sorted(store) if key != "sha256"}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def load_store(path: Path | str | None = None) -> dict:
    """Parse the digest store; raises ``ExperimentError`` on malformation.

    Stores written since the checksummed format embed a ``sha256``
    self-checksum which is verified here — a corrupted pin must fail
    loudly, never silently gate (or un-gate) the conformance matrix.
    Stores without one (pinned by older code) are accepted.
    """
    store_path = Path(path) if path is not None else default_store_path()
    try:
        store = json.loads(store_path.read_text())
    except FileNotFoundError:
        raise ExperimentError(
            f"golden digest store not found at {store_path}; "
            f"run `python -m repro verify --tier 3 --regen-golden` to create it"
        ) from None
    except json.JSONDecodeError as error:
        raise ExperimentError(f"golden digest store is not valid JSON: {error}") from None
    for key in ("format", "environment", "groups"):
        if key not in store:
            raise ExperimentError(f"golden digest store is missing key {key!r}")
    declared = store.get("sha256")
    if declared is not None and declared != _store_checksum(store):
        raise ExperimentError(
            f"golden digest store at {store_path} failed its self-checksum; "
            f"the file is corrupt — restore it from version control or "
            f"re-pin with `python -m repro verify --tier 3 --regen-golden`"
        )
    return store


def save_store(
    digests: dict[str, str], path: Path | str | None = None
) -> dict:
    """Write a fresh store (digest per group) with this environment's
    fingerprint; returns the written structure.

    Each registered group's entry also embeds the exact
    :class:`ExecutionPolicy` of its canonical (batched-serial-eager)
    cell, so a pinned digest names the precise execution that reproduces
    it — ``Session(ExecutionPolicy.from_dict(entry["policy"]))`` on the
    golden preset.
    """
    store_path = Path(path) if path is not None else default_store_path()
    registered = {group.group_id: group for group in GOLDEN_GROUPS}
    canonical = GOLDEN_CONFIGS[0]

    def entry(group_id: str, digest: str) -> dict:
        if group_id not in registered:
            return {"digest": digest}
        policy = case_policy(registered[group_id], canonical)
        return {"digest": digest, "policy": policy.to_dict()}

    store = {
        "format": STORE_FORMAT,
        "environment": environment_fingerprint(),
        "groups": {
            group_id: entry(group_id, digest)
            for group_id, digest in sorted(digests.items())
        },
    }
    store["sha256"] = _store_checksum(store)
    # Atomic publish: the store is the gate for every conformance run, so a
    # crash mid-pin must leave the previous pins intact, never a torn file.
    text = json.dumps(store, indent=2) + "\n"
    fd, tmp_name = tempfile.mkstemp(dir=store_path.parent, suffix=".tmp.json")
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(store_path)
    finally:
        tmp.unlink(missing_ok=True)
    return store


def environment_matches(store: dict) -> bool:
    """Whether the store was pinned under this numerical environment."""
    return store.get("environment") == environment_fingerprint()


# ----------------------------------------------------------------------
# Matrix verification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GroupOutcome:
    """One group's verdict across every executed config."""

    group_id: str
    digests: dict[str, str]  # config_id -> digest
    stored: str | None

    @property
    def equivalent(self) -> bool:
        """All execution paths produced one digest (machine-independent)."""
        return len(set(self.digests.values())) == 1

    @property
    def digest(self) -> str:
        """The group digest (only meaningful when ``equivalent``)."""
        return next(iter(self.digests.values()))

    @property
    def matches_stored(self) -> bool | None:
        """Digest == committed pin; ``None`` when no pin exists."""
        if self.stored is None:
            return None
        return self.equivalent and self.digest == self.stored


@dataclass(frozen=True)
class MatrixReport:
    """Verdict of a full (or filtered) conformance-matrix run."""

    outcomes: tuple[GroupOutcome, ...]
    environment_match: bool
    regenerated: bool

    @property
    def all_equivalent(self) -> bool:
        return all(outcome.equivalent for outcome in self.outcomes)

    @property
    def all_match_stored(self) -> bool:
        return all(outcome.matches_stored for outcome in self.outcomes)

    @property
    def passed(self) -> bool:
        """Equivalence always gates; stored pins gate in a pinned
        environment (elsewhere they are reported, not enforced)."""
        if not self.all_equivalent:
            return False
        if self.regenerated:
            return True
        return self.all_match_stored if self.environment_match else True


def _select(items, ids, id_of, kind: str):
    if ids is None:
        return tuple(items)
    by_id = {id_of(item): item for item in items}
    missing = [i for i in ids if i not in by_id]
    if missing:
        raise ExperimentError(f"unknown {kind} {missing}; available: {sorted(by_id)}")
    return tuple(by_id[i] for i in ids)


def verify_matrix(
    group_ids: list[str] | None = None,
    config_ids: list[str] | None = None,
    store_path: Path | str | None = None,
    regen: bool = False,
    progress=None,
    telemetry: str = "off",
) -> MatrixReport:
    """Run the conformance matrix and compare against the committed store.

    Parameters
    ----------
    group_ids / config_ids:
        Optional filters (CI shards and the fast tier-1 smoke use these).
    store_path:
        Digest store location (default: the committed package store).
    regen:
        Re-pin: write the measured group digests (and this environment's
        fingerprint) to the store instead of comparing.  Regeneration
        still requires within-group equivalence.
    progress:
        Optional callable ``(message: str) -> None`` for live reporting.
    telemetry:
        Telemetry level for every case session (``"off"``, ``"summary"``,
        ``"trace"``).  Observation only: digests are computed from scores
        and must be identical at every level — running the matrix at
        ``"trace"`` against a store pinned at ``"off"`` *is* the
        telemetry-neutrality check.
    """
    groups = _select(GOLDEN_GROUPS, group_ids, lambda g: g.group_id, "golden groups")
    configs = _select(GOLDEN_CONFIGS, config_ids, lambda c: c.config_id, "golden configs")
    if not groups or not configs:
        raise ExperimentError("golden matrix selection is empty")
    stored_groups: dict[str, dict] = {}
    environment_match = False
    if not regen:
        store = load_store(store_path)
        stored_groups = store["groups"]
        environment_match = environment_matches(store)
    outcomes = []
    for group in groups:
        digests: dict[str, str] = {}
        for config in configs:
            if progress is not None:
                progress(f"{group.group_id} / {config.config_id}")
            digests[config.config_id] = digest_sweep_result(
                run_golden_case(group, config, telemetry=telemetry)
            )
        stored = stored_groups.get(group.group_id, {}).get("digest")
        outcomes.append(
            GroupOutcome(group_id=group.group_id, digests=digests, stored=stored)
        )
    report = MatrixReport(
        outcomes=tuple(outcomes),
        environment_match=environment_match,
        regenerated=regen,
    )
    if regen:
        if not report.all_equivalent:
            raise ExperimentError(
                "refusing to pin golden digests: execution paths disagree "
                f"({[o.group_id for o in report.outcomes if not o.equivalent]})"
            )
        # Partial regens keep the untouched groups' existing pins — but
        # only pins made under *this* environment: save_store() stamps the
        # whole store with the current fingerprint, and relabeling another
        # machine's digests would turn informational mismatches into
        # enforced stale pins.
        existing: dict[str, str] = {}
        try:
            previous = load_store(store_path)
        except ExperimentError:
            previous = None
        if previous is not None:
            kept = set(previous["groups"]) - {o.group_id for o in outcomes}
            if kept and not environment_matches(previous):
                raise ExperimentError(
                    "refusing a partial re-pin: the existing store was "
                    f"generated under {previous['environment']} and groups "
                    f"{sorted(kept)} would be relabeled with this "
                    "environment's fingerprint without being re-measured; "
                    "regenerate all groups (omit --golden-groups) instead"
                )
            existing = {
                gid: entry["digest"] for gid, entry in previous["groups"].items()
            }
        existing.update({o.group_id: o.digest for o in outcomes})
        save_store(existing, store_path)
    return report
