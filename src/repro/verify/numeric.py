"""The "numerically conforming" verification tier for non-default backends.

The golden tiers pin *bitwise* identity — the right contract for the numpy
reference backend, where every execution path must reproduce one digest.
A torch backend (different BLAS, different reduction order, possibly a
GPU) cannot honestly promise bit-identity; what it can promise is:

* the **protocol** is identical — the same plan structure, the same keyed
  substream draws, the same privacy-spend sequence.  Noise is always
  drawn by the keyed numpy substreams and transferred in, so this holds
  by construction; the digest check here proves the construction.
* the **released values** agree with the numpy reference within a
  certified per-coordinate tolerance (absolute *or* ULP distance).

The teeth battery proves the tier separates harmless float drift from
real bugs: a few-ULP reassociation perturbation must be accepted, while
the classic ``Delta / (2 epsilon)`` miscalibration, a dropped Laplace
draw, and an understated sensitivity (``2 d`` instead of Lemma 1's
``2 (d + 1)^2``) must each be rejected.  The faults mirror
:data:`repro.verify.conformance.FAULT_KINDS` at the stacked-kernel level:
each one leaves the protocol digest *unchanged* (the same stream is drawn
either way) and corrupts only the released coefficients — exactly the
failure class this tier exists to catch.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ExperimentError
from ..experiments.figures import SweepResult
from ..experiments.harness import objective_for
from ..privacy.rng import derive_substream
from ..runtime import backend_available, fm_noise_stack, spectral_solve_stack, use_backend
from .conformance import FAULT_KINDS
from .golden import GOLDEN_CONFIGS, GOLDEN_GROUPS, run_golden_case

__all__ = [
    "DEFAULT_TOLERANCE",
    "FAULT_KINDS",
    "NumericCheck",
    "NumericReport",
    "NumericTolerance",
    "ReleaseOutcome",
    "compare_releases",
    "compare_sweeps",
    "fm_release_stack",
    "structure_digest",
    "ulp_distance",
    "ulp_perturb",
    "verify_numeric",
]

#: Substream tag namespacing every draw this tier makes (distinct from the
#: harness algorithm keys, so numeric-tier draws can never alias a sweep's).
_NUMERIC_STREAM_TAG = 0x4E554D  # "NUM"

#: The release battery: both objectives at a Table-2-sized dimensionality,
#: spanning three decades of budget (tight noise to loose noise).
_RELEASE_CASES = (("linear", 3), ("logistic", 4))
_RELEASE_EPSILONS = (0.1, 1.0, 10.0)
_RELEASE_ROWS = 96

#: Golden subset the sweep-level comparison runs (one group suffices: every
#: group exercises the identical kernel dispatch; the release battery
#: already spans both objectives).
_SWEEP_GROUP = "figure6-linear-sv2"


def ulp_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-coordinate ULP distance between two float64 arrays.

    Bit patterns are mapped through the sign-fold transform (negative
    patterns reflected below zero) so the int64 images are ordered
    exactly as the floats are, making the distance a count of
    representable doubles strictly between the operands.  Any NaN on
    either side yields ``inf`` — a backend returning NaN where the
    reference has a number is never "close".
    """
    a = np.ascontiguousarray(a, dtype=np.float64)
    b = np.ascontiguousarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ExperimentError(f"shape mismatch {a.shape} vs {b.shape}")

    def folded(x: np.ndarray) -> np.ndarray:
        bits = x.view(np.int64)
        return np.where(bits >= 0, bits, np.iinfo(np.int64).min - bits)

    # Exact arbitrary-precision differencing (folded images can differ by
    # more than int64 holds when signs differ); the final float64 cast is
    # approximate only for distances far beyond any sane tolerance.
    exact = np.abs(folded(a).astype(object) - folded(b).astype(object))
    distance = np.array([float(v) for v in exact.reshape(-1)]).reshape(a.shape)
    return np.where(np.isnan(a) | np.isnan(b), np.inf, distance)


def ulp_perturb(values: np.ndarray, ulps: int = 4) -> np.ndarray:
    """``values`` nudged ``ulps`` representable doubles away, per coordinate.

    Alternating directions (even flat-index coordinates toward ``+inf``,
    odd toward ``-inf``) model reassociation drift without a random draw.
    """
    out = np.ascontiguousarray(values, dtype=np.float64).copy()
    flat = out.reshape(-1)
    direction = np.where(np.arange(flat.size) % 2 == 0, np.inf, -np.inf)
    for _ in range(int(ulps)):
        flat[:] = np.nextafter(flat, direction)
    return out


@dataclass(frozen=True)
class NumericTolerance:
    """A certified per-coordinate acceptance bound.

    A coordinate conforms when its absolute difference is at most
    ``atol`` *or* its ULP distance is at most ``max_ulps`` — the OR keeps
    the bound meaningful across magnitudes (``atol`` governs near zero,
    where a ULP is vanishingly small; ``max_ulps`` governs large values,
    where a fixed ``atol`` would be needlessly loose).
    """

    atol: float = 1e-9
    max_ulps: int = 256

    def conforms(self, reference: np.ndarray, candidate: np.ndarray) -> bool:
        reference = np.ascontiguousarray(reference, dtype=np.float64)
        candidate = np.ascontiguousarray(candidate, dtype=np.float64)
        abs_ok = np.abs(reference - candidate) <= self.atol
        ulp_ok = ulp_distance(reference, candidate) <= self.max_ulps
        return bool(np.all(abs_ok | ulp_ok))


DEFAULT_TOLERANCE = NumericTolerance()


@dataclass(frozen=True)
class ReleaseOutcome:
    """One FM release through the stacked kernels, with its protocol."""

    protocol: dict
    protocol_digest: str
    omega: np.ndarray  # (E, d) released coefficients, one row per epsilon


def _array_digest(a: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(a, dtype=np.float64).tobytes()).hexdigest()


def _protocol_digest(protocol: dict) -> str:
    canonical = json.dumps(protocol, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def fm_release_stack(
    task: str,
    dim: int,
    epsilons: tuple[float, ...] = _RELEASE_EPSILONS,
    seed: int = 0,
    backend: str = "numpy",
    fault: str | None = None,
) -> ReleaseOutcome:
    """FM released coefficients for one synthetic fold across all epsilons.

    Replicates the runner's FM path end to end — keyed data draw, keyed
    standardized Laplace draw, :func:`fm_noise_stack`, then
    :func:`spectral_solve_stack` under ``backend`` — against data and
    noise that are *always* drawn by the keyed numpy substreams.  The
    protocol record covers everything that defines the draw and the
    spend sequence but deliberately **not** the noise scales: a
    miscalibrated implementation therefore produces an identical
    protocol digest and is caught by the coefficient comparison, which
    is the teeth this tier needs.

    ``fault`` injects one of :data:`FAULT_KINDS` into the consumption of
    the (unchanged) drawn stream, for the tier's self-validation.
    """
    if fault is not None and fault not in FAULT_KINDS:
        raise ExperimentError(f"fault must be one of {FAULT_KINDS}, got {fault!r}")
    objective = objective_for(task, dim)
    d = objective.dim
    epsilon_values = np.asarray(epsilons, dtype=float)
    E = epsilon_values.size

    # Stable task tag (str hash() is salted per process).
    task_tag = int.from_bytes(hashlib.sha256(task.encode()).digest()[:2], "big")
    data_key = [_NUMERIC_STREAM_TAG, 0, task_tag, d]
    data_rng = derive_substream(seed, data_key)
    X = data_rng.uniform(-1.0, 1.0, size=(_RELEASE_ROWS, d))
    # Footnote-1 normalization: rows scaled into the unit L2 ball.
    norms = np.linalg.norm(X, axis=1)
    X /= np.maximum(norms, 1.0)[:, None]
    if task == "logistic":
        y = (data_rng.uniform(size=_RELEASE_ROWS) > 0.5).astype(float)
    else:
        y = data_rng.uniform(-1.0, 1.0, size=_RELEASE_ROWS)

    noise_key = [_NUMERIC_STREAM_TAG, 1, task_tag, d]
    raw = derive_substream(seed, noise_key).laplace(0.0, 1.0, size=(E, 1 + d + d * d))

    sensitivity = objective.sensitivity()
    effective = sensitivity
    if fault == "half_noise":
        effective = sensitivity / 2.0
    elif fault == "wrong_sensitivity":
        effective = 2.0 * d
    scales = effective / epsilon_values
    consumed = np.zeros_like(raw) if fault == "dropped_draw" else raw

    form = objective.aggregate_quadratic(X, y)
    with use_backend(backend):
        noisy_M, noisy_alpha = fm_noise_stack(form.M, form.alpha, consumed, scales)
        result = spectral_solve_stack(
            noisy_M,
            noisy_alpha,
            np.sqrt(2.0) * scales,
            compute_repaired=False,
        )

    protocol = {
        "task": task,
        "dim": d,
        "rows": _RELEASE_ROWS,
        "seed": int(seed),
        "epsilons": [float(e) for e in epsilon_values],
        "spend_sequence": [["fm.release", float(e)] for e in epsilon_values],
        "substream_keys": {"data": data_key, "noise": noise_key},
        "data_digest": hashlib.sha256(
            np.ascontiguousarray(X).tobytes() + np.ascontiguousarray(y).tobytes()
        ).hexdigest(),
        "noise_digest": _array_digest(raw),
    }
    return ReleaseOutcome(
        protocol=protocol,
        protocol_digest=_protocol_digest(protocol),
        omega=result.omega,
    )


@dataclass(frozen=True)
class ReleaseComparison:
    """Verdict of one reference-vs-candidate release comparison."""

    protocol_match: bool
    max_abs_diff: float
    max_ulp: float
    conforming: bool


def compare_releases(
    reference: ReleaseOutcome,
    candidate: ReleaseOutcome,
    tolerance: NumericTolerance = DEFAULT_TOLERANCE,
) -> ReleaseComparison:
    """Protocol digests must be identical; coefficients must be within
    ``tolerance`` per coordinate."""
    protocol_match = reference.protocol_digest == candidate.protocol_digest
    diff = np.abs(reference.omega - candidate.omega)
    ulps = ulp_distance(reference.omega, candidate.omega)
    conforming = protocol_match and tolerance.conforms(reference.omega, candidate.omega)
    return ReleaseComparison(
        protocol_match=protocol_match,
        max_abs_diff=float(diff.max()),
        max_ulp=float(ulps.max()),
        conforming=conforming,
    )


# ----------------------------------------------------------------------
# Sweep-level comparison over the golden subset
# ----------------------------------------------------------------------
def structure_digest(result: SweepResult) -> str:
    """The golden digest minus the score bytes: plan structure only.

    Covers figure/panel/task/parameter, the sweep values, the series
    order, and each point's ``(cells, n_train)`` — everything a backend
    must reproduce exactly even when its floats drift.
    """
    digest = hashlib.sha256()
    digest.update(
        f"{result.figure}|{result.panel}|{result.task}|{result.parameter}".encode()
    )
    values = np.asarray(result.values, dtype=float)
    digest.update(struct.pack(f"<{values.size}d", *values))
    for name, points in result.series.items():
        digest.update(name.encode())
        for point in points:
            digest.update(struct.pack("<qq", point.cells, point.n_train))
    return digest.hexdigest()


def compare_sweeps(
    reference: SweepResult,
    candidate: SweepResult,
    tolerance: NumericTolerance = DEFAULT_TOLERANCE,
) -> ReleaseComparison:
    """Structure digests must be identical; per-point score statistics
    must be within ``tolerance``."""
    protocol_match = structure_digest(reference) == structure_digest(candidate)
    if not protocol_match:
        return ReleaseComparison(
            protocol_match=False,
            max_abs_diff=float("inf"),
            max_ulp=float("inf"),
            conforming=False,
        )

    def scores(result: SweepResult) -> np.ndarray:
        return np.array(
            [
                [point.mean_score, point.std_score]
                for points in result.series.values()
                for point in points
            ]
        )

    ref_scores, cand_scores = scores(reference), scores(candidate)
    return ReleaseComparison(
        protocol_match=True,
        max_abs_diff=float(np.abs(ref_scores - cand_scores).max()),
        max_ulp=float(ulp_distance(ref_scores, cand_scores).max()),
        conforming=tolerance.conforms(ref_scores, cand_scores),
    )


# ----------------------------------------------------------------------
# The tier driver
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NumericCheck:
    label: str
    ok: bool
    detail: str = ""


@dataclass(frozen=True)
class NumericReport:
    """Verdict of one numeric-conformance run."""

    candidate: str
    candidate_available: bool
    checks: tuple[NumericCheck, ...] = field(default_factory=tuple)

    @property
    def passed(self) -> bool:
        return all(check.ok for check in self.checks)


def _release_checks(
    candidate: str,
    candidate_available: bool,
    seed: int,
    tolerance: NumericTolerance,
) -> list[NumericCheck]:
    checks: list[NumericCheck] = []
    for task, dim in _RELEASE_CASES:
        case = f"{task} d={dim}"
        reference = fm_release_stack(task, dim, seed=seed)

        # The reference backend is deterministic down to the bit.
        repeat = compare_releases(fm_release_stack(task, dim, seed=seed), reference)
        checks.append(
            NumericCheck(
                f"numpy self-consistency ({case})",
                repeat.protocol_match and repeat.max_ulp == 0.0,
                f"max ulp {repeat.max_ulp:g}",
            )
        )

        # Teeth, accepting half: reassociation-scale drift conforms.
        perturbed = ReleaseOutcome(
            protocol=reference.protocol,
            protocol_digest=reference.protocol_digest,
            omega=ulp_perturb(reference.omega, ulps=4),
        )
        accepted = compare_releases(reference, perturbed, tolerance)
        checks.append(
            NumericCheck(
                f"4-ulp perturbation accepted ({case})",
                accepted.conforming,
                f"max ulp {accepted.max_ulp:g} <= {tolerance.max_ulps}",
            )
        )

        # Teeth, rejecting half: every classic calibration bug is flagged
        # despite its identical protocol digest.
        for kind in FAULT_KINDS:
            faulty = fm_release_stack(task, dim, seed=seed, fault=kind)
            verdict = compare_releases(reference, faulty, tolerance)
            checks.append(
                NumericCheck(
                    f"fault {kind} rejected ({case})",
                    verdict.protocol_match and not verdict.conforming,
                    f"max abs diff {verdict.max_abs_diff:.3g}",
                )
            )

        if candidate_available:
            cand = fm_release_stack(task, dim, seed=seed, backend=candidate)
            verdict = compare_releases(reference, cand, tolerance)
            checks.append(
                NumericCheck(
                    f"{candidate} release conforms ({case})",
                    verdict.conforming,
                    f"max abs diff {verdict.max_abs_diff:.3g}, "
                    f"max ulp {verdict.max_ulp:g}",
                )
            )
    return checks


def verify_numeric(
    candidate: str = "torch",
    seed: int = 0,
    tolerance: NumericTolerance = DEFAULT_TOLERANCE,
    sweep_group: str | None = _SWEEP_GROUP,
) -> NumericReport:
    """Run the numeric-conformance tier against ``candidate``.

    Always runs the reference self-consistency and teeth batteries (they
    validate the tier itself and need no optional dependency).  When the
    candidate backend is importable, additionally certifies its releases
    and — unless ``sweep_group`` is ``None`` — a full golden-subset sweep
    against the numpy reference.  A missing candidate is reported as
    skipped, not failed: the numpy-only environment must stay green.
    """
    available = candidate == "numpy" or backend_available(candidate)
    checks = _release_checks(candidate, available, seed, tolerance)

    if available and sweep_group is not None:
        groups = {group.group_id: group for group in GOLDEN_GROUPS}
        if sweep_group not in groups:
            raise ExperimentError(
                f"unknown golden group {sweep_group!r}; available: {sorted(groups)}"
            )
        group = groups[sweep_group]
        config = GOLDEN_CONFIGS[0]  # the canonical batched-serial-eager cell
        reference = run_golden_case(group, config)
        cand = run_golden_case(group, config, backend=candidate)
        verdict = compare_sweeps(reference, cand, tolerance)
        checks.append(
            NumericCheck(
                f"{candidate} golden sweep conforms ({sweep_group})",
                verdict.conforming,
                f"structure {'match' if verdict.protocol_match else 'MISMATCH'}, "
                f"max abs diff {verdict.max_abs_diff:.3g}, "
                f"max ulp {verdict.max_ulp:g}",
            )
        )
    elif not available:
        checks.append(
            NumericCheck(
                f"candidate backend {candidate!r} unavailable — skipped",
                True,
                "reference battery verified; install the optional extra to "
                "certify the candidate",
            )
        )
    return NumericReport(
        candidate=candidate, candidate_available=available, checks=tuple(checks)
    )
