"""Adversarial empirical certification of the Lemma-1 sensitivity bounds.

Algorithm 1's privacy proof rests on one inequality: replacing a single
tuple moves the database-level coefficient vector by at most ``Delta`` in
L1 (Lemma 1, instantiated in Section 4.2 / 5.3 for the two case studies).
:mod:`repro.core.sensitivity` checks that inequality on *given* data; this
module goes looking for trouble — it searches the declared tuple domain
(``||x||_2 <= 1``, task target range) for the pair of tuples maximizing
the realized coefficient distance, then certifies that even the adversarial
maximum stays under the analytic bound.

The search combines three stages:

1. a **vertex battery** — domain extreme points (axis unit vectors, box
   corners, the origin) crossed with target extremes, where L1-maximizing
   pairs live for polynomial coefficient maps;
2. **random sampling** inside the domain, guarding against a bound whose
   binding constraint is interior;
3. **greedy refinement** — annealed coordinate perturbations around the
   incumbent, projected back into the domain.

A certificate with ``holds=False`` is a counterexample to the privacy
proof's premise (two concrete in-domain tuples whose coefficient distance
exceeds ``Delta``) and comes with the offending pair attached.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..core.objectives import RegressionObjective
from ..core.sensitivity import coefficient_l1_distance
from ..exceptions import DataError
from ..privacy.rng import RngLike, ensure_rng

__all__ = ["SensitivityCertificate", "certify_sensitivity"]

#: Tolerance mirroring :func:`repro.core.sensitivity.verify_lemma1`.
_REL_TOLERANCE = 1e-9


@dataclass(frozen=True)
class SensitivityCertificate:
    """Outcome of one adversarial sensitivity search.

    Attributes
    ----------
    objective:
        Class name of the certified objective.
    dim, tight:
        Dimensionality and which bound variant was certified.
    analytic_delta:
        The Lemma-1 bound Algorithm 1 calibrates noise to.
    best_distance:
        Largest realized coefficient L1 distance the search found.
    utilization:
        ``best_distance / analytic_delta`` — how much of the bound the
        domain actually realizes (the paper's ``B = d`` bounds are loose
        by design; the tight ``sqrt(d)`` variants should be approached).
    evaluations:
        Number of tuple pairs evaluated.
    best_pair:
        ``(x_a, y_a, x_b, y_b)`` attaining ``best_distance``.
    """

    objective: str
    dim: int
    tight: bool
    analytic_delta: float
    best_distance: float
    utilization: float
    evaluations: int
    best_pair: tuple[np.ndarray, float, np.ndarray, float]

    @property
    def holds(self) -> bool:
        """Whether the analytic bound survived the adversarial search."""
        return self.best_distance <= self.analytic_delta * (1.0 + _REL_TOLERANCE)


def _project_to_ball(x: np.ndarray) -> np.ndarray:
    norm = float(np.linalg.norm(x))
    if norm > 1.0:
        return x / norm
    return x


def _target_values(task: str) -> tuple[float, ...]:
    return (-1.0, 0.0, 1.0) if task == "linear" else (0.0, 1.0)


def _clamp_target(task: str, y: float) -> float:
    if task == "linear":
        return float(np.clip(y, -1.0, 1.0))
    return 1.0 if y >= 0.5 else 0.0


def _vertex_candidates(task: str, dim: int, rng: np.random.Generator) -> list[tuple[np.ndarray, float]]:
    """Domain extreme points crossed with target extremes."""
    xs: list[np.ndarray] = [np.zeros(dim)]
    for j in range(dim):
        for sign in (1.0, -1.0):
            e = np.zeros(dim)
            e[j] = sign
            xs.append(e)
    # Unit-norm box corners: sign patterns scaled to the sphere.  All 2^d
    # corners for small d, a random subset beyond.
    scale = 1.0 / np.sqrt(dim)
    if dim <= 4:
        patterns = itertools.product((1.0, -1.0), repeat=dim)
    else:
        patterns = (rng.choice((1.0, -1.0), size=dim) for _ in range(16))
    xs.extend(np.array(p) * scale for p in patterns)
    return [(x, y) for x in xs for y in _target_values(task)]


def _random_candidates(
    task: str, dim: int, count: int, rng: np.random.Generator
) -> list[tuple[np.ndarray, float]]:
    out = []
    for _ in range(count):
        direction = rng.normal(size=dim)
        direction /= max(float(np.linalg.norm(direction)), 1e-12)
        radius = rng.uniform() ** (1.0 / dim)
        x = direction * radius
        if task == "linear":
            y = float(rng.uniform(-1.0, 1.0))
        else:
            y = float(rng.integers(2))
        out.append((x, y))
    return out


def certify_sensitivity(
    objective: RegressionObjective,
    trials: int = 600,
    refine_steps: int = 120,
    rng: RngLike = 0,
    tight: bool = False,
    analytic_delta: float | None = None,
) -> SensitivityCertificate:
    """Adversarially search for a Lemma-1 violation; certify its absence.

    Parameters
    ----------
    objective:
        The degree-2 objective whose declared-domain bound is on trial.
    trials:
        Random tuple-pair evaluations after the vertex battery.
    refine_steps:
        Greedy annealed refinement iterations around the incumbent.
    tight:
        Certify the ``sqrt(d)`` variant instead of the paper's ``d`` bound.
    analytic_delta:
        Override the bound under test (the auditor-teeth tests pass a
        deliberately understated value to confirm ``holds`` goes False).
    """
    if trials < 0 or refine_steps < 0:
        raise DataError("trials and refine_steps must be non-negative")
    gen = ensure_rng(rng)
    task = objective.task
    dim = objective.dim
    delta = (
        objective.sensitivity(tight=tight)
        if analytic_delta is None
        else float(analytic_delta)
    )

    evaluations = 0

    def distance(a: tuple[np.ndarray, float], b: tuple[np.ndarray, float]) -> float:
        nonlocal evaluations
        evaluations += 1
        return coefficient_l1_distance(objective, a, b)

    # Stage 1: every vertex against every vertex (the battery is small).
    vertices = _vertex_candidates(task, dim, gen)
    best_value = -1.0
    best_pair = (vertices[0], vertices[0])
    for a, b in itertools.combinations(vertices, 2):
        value = distance(a, b)
        if value > best_value:
            best_value, best_pair = value, (a, b)

    # Stage 2: random interior pairs.
    randoms = _random_candidates(task, dim, trials, gen)
    for i in range(0, len(randoms) - 1, 2):
        value = distance(randoms[i], randoms[i + 1])
        if value > best_value:
            best_value, best_pair = value, (randoms[i], randoms[i + 1])
    # Random tuples also challenge the incumbent directly.
    for candidate in randoms[: trials // 4]:
        value = distance(candidate, best_pair[1])
        if value > best_value:
            best_value, best_pair = value, (candidate, best_pair[1])

    # Stage 3: annealed greedy refinement of the incumbent pair.
    (x_a, y_a), (x_b, y_b) = best_pair
    x_a, x_b = x_a.copy(), x_b.copy()
    for step in range(refine_steps):
        scale = 0.5 * (1.0 - step / max(refine_steps, 1)) + 0.01
        which = step % 2
        x_new = (x_a if which == 0 else x_b) + gen.normal(0.0, scale, size=dim)
        x_new = _project_to_ball(x_new)
        if task == "linear":
            y_new = _clamp_target(
                task, (y_a if which == 0 else y_b) + gen.normal(0.0, scale)
            )
        else:
            flip = gen.uniform() < 0.25
            y_old = y_a if which == 0 else y_b
            y_new = 1.0 - y_old if flip else y_old
        trial_a = (x_new, y_new) if which == 0 else (x_a, y_a)
        trial_b = (x_b, y_b) if which == 0 else (x_new, y_new)
        value = distance(trial_a, trial_b)
        if value > best_value:
            best_value = value
            (x_a, y_a), (x_b, y_b) = trial_a, trial_b

    utilization = best_value / delta if delta > 0 else float("inf")
    return SensitivityCertificate(
        objective=type(objective).__name__,
        dim=dim,
        tight=tight,
        analytic_delta=delta,
        best_distance=float(best_value),
        utilization=float(utilization),
        evaluations=evaluations,
        best_pair=(x_a.copy(), float(y_a), x_b.copy(), float(y_b)),
    )
