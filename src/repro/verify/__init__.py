"""DP conformance & golden-oracle verification subsystem.

Theorem 1 is the paper's core claim — Algorithm 1 is ``epsilon``-DP — and
the runtime's headline guarantee is that every execution path (batched,
tiled, threaded, forked) is bitwise identical to the per-cell oracle.  This
package promotes both from scattered ad-hoc assertions to a subsystem:

:mod:`repro.verify.bounds`
    Exact (Clopper–Pearson) binomial confidence machinery, pure numpy.
:mod:`repro.verify.neighbors`
    Neighboring-dataset generators for every task/mechanism, validated
    against the objectives' declared domains.
:mod:`repro.verify.conformance`
    The registry-driven mechanism auditor: black-box privacy-loss
    measurement with simultaneous confidence *lower bounds* on
    ``epsilon_hat``, plus deliberately broken mechanism variants that prove
    the auditor has teeth.
:mod:`repro.verify.certify`
    Adversarial search over tuple pairs empirically confirming the
    Section-4/5 L1 sensitivity bounds of :mod:`repro.core.sensitivity`.
:mod:`repro.verify.golden`
    The golden-oracle registry: digest-checked snapshot fixtures pinning
    figure-pipeline outputs across the full ``{runtime, executor,
    tile_size, stream_version}`` matrix.
:mod:`repro.verify.numeric`
    The "numerically conforming" tier for non-default array backends:
    identical protocol digests plus certified per-coordinate atol/ULP
    bounds on released coefficients, with a teeth battery separating
    reassociation drift from calibration bugs.
:mod:`repro.verify.cli`
    The ``python -m repro verify --tier {1,2,3,numeric}`` entry point and
    the tiered suite contract (tier 1: fast gate; tier 2: statistical
    audits; tier 3: golden matrix; numeric: backend conformance).
"""

from .bounds import (
    BinomialBounds,
    clopper_pearson,
    log_ratio_lower_bound,
    regularized_incomplete_beta,
)
from .certify import SensitivityCertificate, certify_sensitivity
from .conformance import (
    ConformanceReport,
    MechanismSpec,
    audit_all,
    audit_release,
    audit_spec,
    conformance_registry,
    faulty_fm_release,
    register_mechanism,
)
from .golden import (
    GOLDEN_CONFIGS,
    GOLDEN_GROUPS,
    GoldenConfig,
    GoldenGroup,
    GroupOutcome,
    MatrixReport,
    default_store_path,
    digest_sweep_result,
    environment_fingerprint,
    load_store,
    run_golden_case,
    save_store,
    verify_matrix,
)
from .neighbors import NeighborPair, neighbor_pairs, worst_case_pair
from .numeric import (
    DEFAULT_TOLERANCE,
    NumericCheck,
    NumericReport,
    NumericTolerance,
    ReleaseOutcome,
    compare_releases,
    compare_sweeps,
    fm_release_stack,
    structure_digest,
    ulp_distance,
    ulp_perturb,
    verify_numeric,
)

__all__ = [
    "BinomialBounds",
    "clopper_pearson",
    "log_ratio_lower_bound",
    "regularized_incomplete_beta",
    "SensitivityCertificate",
    "certify_sensitivity",
    "ConformanceReport",
    "MechanismSpec",
    "audit_all",
    "audit_release",
    "audit_spec",
    "conformance_registry",
    "faulty_fm_release",
    "register_mechanism",
    "GOLDEN_CONFIGS",
    "GOLDEN_GROUPS",
    "GoldenConfig",
    "GoldenGroup",
    "GroupOutcome",
    "MatrixReport",
    "default_store_path",
    "digest_sweep_result",
    "environment_fingerprint",
    "load_store",
    "run_golden_case",
    "save_store",
    "verify_matrix",
    "NeighborPair",
    "neighbor_pairs",
    "worst_case_pair",
    "DEFAULT_TOLERANCE",
    "NumericCheck",
    "NumericReport",
    "NumericTolerance",
    "ReleaseOutcome",
    "compare_releases",
    "compare_sweeps",
    "fm_release_stack",
    "structure_digest",
    "ulp_distance",
    "ulp_perturb",
    "verify_numeric",
]
