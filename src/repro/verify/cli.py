"""``python -m repro verify`` — the tiered verification entry point.

Four tiers, by cost and depth:

``--tier 1`` (seconds — the fast conformance gate)
    Adversarial sensitivity certificates for both objectives, neighbor-
    battery domain validation, an auditor-teeth smoke (a deterministic
    leak must be flagged), and golden-store well-formedness.
``--tier 2`` (minutes — statistical audits)
    Black-box privacy audits of FM and every privacy-claiming baseline:
    plug-in ``epsilon_hat`` plus a certified Clopper–Pearson lower bound
    per mechanism.  A mechanism fails only when even the lower bound
    exceeds its nominal budget.
``--tier 3`` (minutes — the golden-oracle matrix)
    Every golden figure pipeline across the full ``{runtime, executor,
    tile_size, stream_version}`` matrix: within-group bitwise equivalence
    always gates; committed-digest pins gate when the environment
    fingerprint matches (``--regen-golden`` re-pins).
``--tier numeric`` (seconds to a minute — backend conformance)
    Certifies a non-default array backend (``--backend``, default torch)
    as *numerically conforming*: identical protocol digests (plan
    structure, substream keys, spend sequence) plus per-coordinate
    atol/ULP bounds on released coefficients, with a teeth battery
    proving the tolerance separates reassociation drift from
    miscalibration.  A missing candidate backend is skipped, not failed.

Exit code 0 iff every executed check passed.
"""

from __future__ import annotations

import sys

from ..baselines.base import algorithm_is_private, algorithm_names, canonical_algorithm_name
from ..core.objectives import LinearRegressionObjective, LogisticRegressionObjective
from ..exceptions import ReproError
from ..obs import make_recorder, use_recorder
from .certify import certify_sensitivity
from .conformance import audit_all, audit_release, faulty_fm_release
from .golden import GOLDEN_CONFIGS, GOLDEN_GROUPS, load_store, verify_matrix
from .neighbors import neighbor_pairs, worst_case_pair
from .numeric import (
    _SWEEP_GROUP as _NUMERIC_SWEEP_GROUP,
    DEFAULT_TOLERANCE,
    NumericTolerance,
    verify_numeric,
)

__all__ = ["add_verify_arguments", "run_verify"]

_HEX_DIGITS = set("0123456789abcdef")


def add_verify_arguments(parser) -> None:
    """Attach the ``verify`` subcommand's options to its subparser."""
    parser.add_argument(
        "--tier", choices=("1", "2", "3", "numeric"), default="1",
        help="1: fast conformance gate; 2: statistical privacy audits; "
        "3: golden-oracle execution matrix; numeric: certified-tolerance "
        "conformance of a non-default array backend against the numpy "
        "bit-identity reference",
    )
    parser.add_argument(
        "--backend", default="torch",
        help="candidate array backend the numeric tier certifies "
        "(default torch; reported as skipped when not importable)",
    )
    parser.add_argument(
        "--atol", type=float, default=None,
        help="numeric tier: absolute per-coordinate tolerance "
        "(default 1e-9; a coordinate passes on atol OR ulp)",
    )
    parser.add_argument(
        "--max-ulps", type=int, default=None,
        help="numeric tier: per-coordinate ULP-distance tolerance "
        "(default 256)",
    )
    parser.add_argument(
        "--no-sweep", action="store_true",
        help="numeric tier: skip the golden-subset sweep comparison "
        "(release battery only; seconds instead of a minute)",
    )
    parser.add_argument("--epsilon", type=float, default=1.0,
                        help="nominal budget audited per mechanism (tier 2)")
    parser.add_argument(
        "--trials", type=int, default=None,
        help="override every mechanism's audit trial budget (tier 2)",
    )
    parser.add_argument("--confidence", type=float, default=0.95,
                        help="confidence level of the certified lower bounds")
    parser.add_argument("--task", choices=("linear", "logistic"), default="linear",
                        help="task the tier-2 audits run on")
    parser.add_argument(
        "--mechanisms", default=None,
        help="comma-separated subset of mechanisms to audit (default: all)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--golden-groups", default=None,
        help="comma-separated golden group ids (tier 3; default: all)",
    )
    parser.add_argument(
        "--golden-configs", default=None,
        help="comma-separated golden config ids (tier 3; default: all)",
    )
    parser.add_argument(
        "--golden-store", default=None,
        help="digest store path (default: the committed package store)",
    )
    parser.add_argument(
        "--regen-golden", action="store_true",
        help="re-pin the golden digests for this environment instead of comparing",
    )
    parser.add_argument(
        "--telemetry", choices=("off", "summary", "trace"), default=None,
        help="telemetry level for the tier-3 case sessions (default off); "
        "digests are asserted against the store either way, so running "
        "with 'trace' is the telemetry-neutrality check",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write the tier-3 matrix run's merged telemetry as JSONL to "
        "PATH (implies --telemetry trace unless a level is given)",
    )


def _check(label: str, ok: bool, detail: str = "") -> bool:
    verdict = "PASS" if ok else "FAIL"
    suffix = f"  ({detail})" if detail else ""
    print(f"  [{verdict}] {label}{suffix}")
    return ok


# ----------------------------------------------------------------------
# Tier 1
# ----------------------------------------------------------------------
def _run_tier1(args) -> int:
    print("tier 1: fast conformance gate")
    ok = True

    for objective_cls in (LinearRegressionObjective, LogisticRegressionObjective):
        for dim in (1, 3):
            for tight in (False, True):
                cert = certify_sensitivity(
                    objective_cls(dim), trials=300, refine_steps=60,
                    rng=args.seed, tight=tight,
                )
                label = (
                    f"sensitivity certificate {cert.objective} d={dim} "
                    f"{'tight' if tight else 'paper'}"
                )
                ok &= _check(
                    label,
                    cert.holds,
                    f"best {cert.best_distance:.4f} <= Delta {cert.analytic_delta:.4f}, "
                    f"{cert.utilization:.0%} utilized",
                )

    for task in ("linear", "logistic"):
        for dim in (1, 3):
            try:
                pairs = neighbor_pairs(task, dim, rng=args.seed)
                ok &= _check(
                    f"neighbor battery {task} d={dim}", True, f"{len(pairs)} pairs"
                )
            except ReproError as error:
                ok &= _check(f"neighbor battery {task} d={dim}", False, str(error))

    # Teeth: a deterministic leak must be flagged even at smoke trial counts.
    leak = audit_release(
        faulty_fm_release("dropped_draw", epsilon=1.0),
        worst_case_pair("linear", 1),
        nominal_epsilon=1.0,
        trials=600,
        confidence=args.confidence,
        rng=args.seed,
        mechanism="FM[dropped_draw]",
    )
    ok &= _check(
        "auditor teeth (dropped Laplace draw flagged)",
        leak.violation,
        f"epsilon_lower {leak.epsilon_lower:.2f} > nominal {leak.nominal_epsilon:g}",
    )

    try:
        store = load_store(args.golden_store)
        registered = {group.group_id for group in GOLDEN_GROUPS}
        stored = set(store["groups"])
        digests_ok = all(
            len(entry.get("digest", "")) == 64
            and set(entry["digest"]) <= _HEX_DIGITS
            for entry in store["groups"].values()
        )
        ok &= _check(
            "golden store well-formed",
            stored == registered and digests_ok,
            f"{len(stored)} groups pinned",
        )
    except ReproError as error:
        ok &= _check("golden store well-formed", False, str(error))

    print(f"tier 1: {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


# ----------------------------------------------------------------------
# Tier 2
# ----------------------------------------------------------------------
def _run_tier2(args) -> int:
    mechanisms = (
        [m.strip() for m in args.mechanisms.split(",") if m.strip()]
        if args.mechanisms
        else None
    )
    print(
        f"tier 2: statistical privacy audits "
        f"(task={args.task}, epsilon={args.epsilon:g}, "
        f"confidence={args.confidence:g})"
    )
    skipped = [
        canonical_algorithm_name(name)
        for name in algorithm_names()
        if not algorithm_is_private(name)
    ]
    if mechanisms is None and skipped:
        print(f"  not audited (no privacy claim): {', '.join(skipped)}")
    reports = audit_all(
        epsilon=args.epsilon,
        task=args.task,
        trials=args.trials,
        confidence=args.confidence,
        mechanisms=mechanisms,
        rng=args.seed,
    )
    width = max(len(r.mechanism) for r in reports)
    header = (
        f"  {'mechanism':<{width}}  {'trials':>7}  {'eps_hat':>8}  "
        f"{'eps_lower':>9}  {'eps_cal':>8}  verdict"
    )
    print(header)
    ok = True
    for report in reports:
        if report.violation:
            verdict = "DP VIOLATION"
        elif report.flagged:
            verdict = "MISCALIBRATED"
        else:
            verdict = "ok"
        ok &= report.passed
        print(
            f"  {report.mechanism:<{width}}  {report.trials:>7}  "
            f"{report.epsilon_hat:>8.3f}  {report.epsilon_lower:>9.3f}  "
            f"{report.calibrated_epsilon:>8.3f}  {verdict}"
        )
    print(
        f"tier 2: {'OK' if ok else 'FAILED'} — every certified lower bound "
        f"{'within' if ok else 'NOT within'} its calibrated budget "
        f"(nominal epsilon {args.epsilon:g})"
    )
    return 0 if ok else 1


# ----------------------------------------------------------------------
# Tier 3
# ----------------------------------------------------------------------
def _run_tier3(args) -> int:
    groups = (
        [g.strip() for g in args.golden_groups.split(",") if g.strip()]
        if args.golden_groups
        else None
    )
    configs = (
        [c.strip() for c in args.golden_configs.split(",") if c.strip()]
        if args.golden_configs
        else None
    )
    telemetry = args.telemetry
    if args.trace:
        if telemetry == "off":
            raise ReproError(
                "--trace needs telemetry: drop --telemetry off or pick "
                "'summary'/'trace'"
            )
        telemetry = telemetry or "trace"
    telemetry = telemetry or "off"
    n_groups = len(groups) if groups else len(GOLDEN_GROUPS)
    n_configs = len(configs) if configs else len(GOLDEN_CONFIGS)
    action = "re-pinning" if args.regen_golden else "verifying"
    telemetry_note = f" (telemetry={telemetry})" if telemetry != "off" else ""
    print(
        f"tier 3: golden-oracle matrix — {action} {n_groups} groups x "
        f"{n_configs} configs{telemetry_note}"
    )
    # An outer trace recorder collects the per-case session recorders
    # (run_golden_case merges each one into it) so --trace yields one
    # file covering the whole matrix run.
    outer = make_recorder("trace" if args.trace else "off")
    with use_recorder(outer):
        report = verify_matrix(
            group_ids=groups,
            config_ids=configs,
            store_path=args.golden_store,
            regen=args.regen_golden,
            telemetry=telemetry,
        )
    for outcome in report.outcomes:
        digest = outcome.digest[:12] if outcome.equivalent else "DIVERGED"
        if args.regen_golden:
            stored_note = "pinned"
        elif outcome.matches_stored is None:
            stored_note = "no stored pin"
        elif outcome.matches_stored:
            stored_note = "matches stored"
        else:
            stored_note = f"stored {outcome.stored[:12]} MISMATCH"
        equivalence = "bitwise-equal" if outcome.equivalent else "PATHS DISAGREE"
        print(f"  {outcome.group_id:<22} {digest:<12}  {equivalence}; {stored_note}")
    if not args.regen_golden and not report.environment_match:
        print(
            "  note: environment fingerprint differs from the stored pins; "
            "digest comparisons are informational here (re-pin with "
            "--regen-golden to enforce them on this machine)"
        )
    if args.trace:
        outer.write_jsonl(args.trace, meta={"entry_point": "verify"})
        print(f"  trace written to {args.trace}")
    print(f"tier 3: {'OK' if report.passed else 'FAILED'}")
    return 0 if report.passed else 1


# ----------------------------------------------------------------------
# Numeric tier
# ----------------------------------------------------------------------
def _run_tier_numeric(args) -> int:
    tolerance = DEFAULT_TOLERANCE
    if args.atol is not None or args.max_ulps is not None:
        tolerance = NumericTolerance(
            atol=args.atol if args.atol is not None else DEFAULT_TOLERANCE.atol,
            max_ulps=(
                args.max_ulps if args.max_ulps is not None
                else DEFAULT_TOLERANCE.max_ulps
            ),
        )
    print(
        f"tier numeric: backend conformance — candidate={args.backend}, "
        f"atol={tolerance.atol:g}, max_ulps={tolerance.max_ulps}"
    )
    report = verify_numeric(
        candidate=args.backend,
        seed=args.seed,
        tolerance=tolerance,
        sweep_group=None if args.no_sweep else _NUMERIC_SWEEP_GROUP,
    )
    ok = True
    for check in report.checks:
        ok &= _check(check.label, check.ok, check.detail)
    if not report.candidate_available:
        print(
            f"  note: backend {report.candidate!r} is not importable here; "
            "its certification was skipped (the reference battery still ran)"
        )
    print(f"tier numeric: {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def run_verify(args) -> int:
    """Dispatch the ``verify`` subcommand; returns a process exit code."""
    runner = {
        "1": _run_tier1,
        "2": _run_tier2,
        "3": _run_tier3,
        "numeric": _run_tier_numeric,
    }[str(args.tier)]
    try:
        return runner(args)
    except ReproError as error:
        print(f"verify: error: {error}", file=sys.stderr)
        return 2
