"""Section 5: polynomial approximation of objective functions.

The Functional Mechanism needs the objective in a *finite* monomial basis.
Logistic loss is not a finite polynomial, so the paper decomposes the
per-tuple cost as ``f(t, w) = sum_l f_l(g_l(t, w))`` with each ``g_l`` linear
in ``w``, Taylor-expands each scalar ``f_l`` around a point ``z_l``, and
truncates at degree 2 (Equation 10).

This module provides

* exact arbitrary-order derivatives of ``softplus(z) = log(1 + exp(z))`` at
  any point, via its closed-form representation as a polynomial in the
  sigmoid ``s = sigmoid(z)`` (``d s / d z = s - s^2`` gives a simple
  coefficient recursion) — used for the default order-2 expansion *and* the
  higher-order extension,
* :class:`ScalarTerm` — one ``(f_l, g_l)`` pair with its expansion point,
* :func:`taylor_polynomial` — the truncated expansion of one composed term
  as a :class:`~repro.core.polynomial.Polynomial` in ``w``,
* the Lemma 3/4 truncation-error bounds, including the paper's logistic
  constant ``(e^2 - e) / (6 (1 + e)^3) ~= 0.015``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..exceptions import DegreeError
from .polynomial import Polynomial, linear_form_power

__all__ = [
    "softplus",
    "softplus_derivatives",
    "sigmoid_polynomial_derivative",
    "ScalarTerm",
    "taylor_polynomial",
    "logistic_truncation_error_bound",
    "logistic_truncation_error_bound_two_sided",
]


def softplus(z: float | np.ndarray) -> float | np.ndarray:
    """``log(1 + exp(z))`` evaluated stably (the paper's ``f_1``)."""
    return np.logaddexp(0.0, z)


def sigmoid_polynomial_derivative(coefficients: Sequence[float]) -> list[float]:
    """Differentiate a polynomial-in-sigmoid once with respect to ``z``.

    If ``h(z) = sum_k a_k s(z)^k`` with ``s`` the sigmoid, then using
    ``ds/dz = s - s^2``:

        h'(z) = sum_k a_k k (s^k - s^{k+1}).

    ``coefficients[k]`` is ``a_k``; the returned list follows the same
    convention and has length ``len(coefficients) + 1``.
    """
    out = [0.0] * (len(coefficients) + 1)
    for k, a in enumerate(coefficients):
        if a == 0.0 or k == 0:
            continue
        out[k] += a * k
        out[k + 1] -= a * k
    return out


def softplus_derivatives(order: int, at: float = 0.0) -> list[float]:
    """Values ``[f(z0), f'(z0), ..., f^(order)(z0)]`` for ``f = softplus``.

    The first derivative of softplus is the sigmoid; every higher derivative
    is a polynomial in the sigmoid obtained by the recursion of
    :func:`sigmoid_polynomial_derivative`.  At ``z0 = 0`` (the paper's
    expansion point) this reproduces the values quoted in Section 5.1:
    ``f(0) = log 2``, ``f'(0) = 1/2``, ``f''(0) = 1/4`` (and ``f'''(0) = 0``,
    ``f''''(0) = -1/8`` for the higher-order extension).

    >>> [round(v, 6) for v in softplus_derivatives(2)]
    [0.693147, 0.5, 0.25]
    """
    order = int(order)
    if order < 0:
        raise DegreeError(f"order must be >= 0, got {order}")
    s = 1.0 / (1.0 + math.exp(-at))
    values = [float(softplus(at))]
    # f' = sigmoid = 0 + 1*s
    coeffs: list[float] = [0.0, 1.0]
    for _ in range(order):
        values.append(math.fsum(a * s**k for k, a in enumerate(coeffs)))
        coeffs = sigmoid_polynomial_derivative(coeffs)
    return values[: order + 1]


#: Signature for a scalar derivative table: derivative_values(order, at) ->
#: [f(at), f'(at), ..., f^(order)(at)].
DerivativeTable = Callable[[int, float], list[float]]


@dataclass(frozen=True)
class ScalarTerm:
    """One ``f_l(g_l(t, w))`` term of the Section-5 decomposition.

    Attributes
    ----------
    name:
        Identifier used in diagnostics (e.g. ``"softplus"``).
    derivatives:
        Callable returning ``[f(z0), ..., f^(order)(z0)]``.
    expansion_point:
        The ``z_l`` around which the Taylor series is taken (paper uses 0).
    third_derivative_range:
        ``(min f''', max f''')`` over the Lemma-4 remainder interval
        ``[z_l - 1, z_l + 1]`` (not the whole real line), used by the
        truncation-error bound.  ``None`` when unknown/not needed.
    """

    name: str
    derivatives: DerivativeTable
    expansion_point: float = 0.0
    third_derivative_range: tuple[float, float] | None = None

    def taylor_coefficients(self, order: int) -> list[float]:
        """Coefficients ``f^(k)(z0) / k!`` for ``k = 0..order``."""
        values = self.derivatives(order, self.expansion_point)
        return [v / math.factorial(k) for k, v in enumerate(values)]


def softplus_term() -> ScalarTerm:
    """The paper's ``f_1(z) = log(1 + exp(z))`` expanded at 0.

    The third derivative of softplus is ``s(1-s)(1-2s)``; over the Lemma-4
    remainder interval ``|z| <= 1`` its extrema are attained at the
    endpoints and equal ``+-(e^2 - e)/(1 + e)^3`` — the constants Section
    5.2 quotes.  (The *global* extrema, ``~+-0.0962`` at ``z ~ -+1.32``,
    are slightly larger; the paper's bound implicitly restricts to the
    interval the Taylor remainder ranges over.)
    """
    extreme = (math.e**2 - math.e) / (1.0 + math.e) ** 3
    return ScalarTerm(
        name="softplus",
        derivatives=softplus_derivatives,
        expansion_point=0.0,
        third_derivative_range=(-extreme, extreme),
    )


def taylor_polynomial(
    term: ScalarTerm,
    x: np.ndarray,
    order: int,
) -> Polynomial:
    """Truncated Taylor expansion of ``f_l(x^T w)`` as a polynomial in ``w``.

    Implements one summand of Equation 10:

        sum_{k=0..order} f_l^(k)(z_l) / k! * (x^T w - z_l)^k,

    expanded into the monomial basis.  With ``z_l = 0`` (the paper's choice)
    the inner binomial disappears and each power of the linear form expands
    by the multinomial theorem (:func:`~repro.core.polynomial.linear_form_power`).
    """
    order = int(order)
    if order < 0:
        raise DegreeError(f"order must be >= 0, got {order}")
    x = np.asarray(x, dtype=float).ravel()
    dim = x.shape[0]
    coeffs = term.taylor_coefficients(order)
    z0 = term.expansion_point
    result = Polynomial.zero(dim)
    if z0 == 0.0:
        for k, c in enumerate(coeffs):
            if c != 0.0:
                result = result + linear_form_power(x, k) * c
        return result
    # General expansion point: (x^T w - z0)^k by the binomial theorem.
    for k, c in enumerate(coeffs):
        if c == 0.0:
            continue
        for m in range(k + 1):
            binom = math.comb(k, m) * (-z0) ** (k - m)
            result = result + linear_form_power(x, m) * (c * binom)
    return result


def logistic_truncation_error_bound() -> float:
    """The paper's quoted per-tuple error constant for logistic truncation.

    Section 5.2 evaluates the Lemma 3/4 bound for logistic regression to

        (e^2 - e) / (6 (1 + e)^3) ~= 0.015.

    (The paper's arithmetic collapses ``L - S`` to a single max term; the
    conservative two-sided value is
    :func:`logistic_truncation_error_bound_two_sided`.)
    """
    return (math.e**2 - math.e) / (6.0 * (1.0 + math.e) ** 3)


def logistic_truncation_error_bound_two_sided() -> float:
    """Conservative ``L - S = max - min`` version of the Lemma-3 bound.

    The degree-3 remainder of softplus on ``|z - z0| <= 1`` lies in
    ``[-c, c]`` with ``c = (e^2 - e)/(6 (1+e)^3)``, so ``L - S <= 2c``.
    """
    return 2.0 * logistic_truncation_error_bound()
