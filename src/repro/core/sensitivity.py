"""Lemma-1 sensitivity machinery and empirical verification helpers.

Algorithm 1 needs ``Delta = 2 max_t sum_{j} sum_{phi in Phi_j} |lambda_phi(t)|``
— an upper bound over the *tuple domain*, independent of the realized data.
Each :class:`~repro.core.objectives.RegressionObjective` carries its analytic
bound; this module adds the cross-checks the test-suite (and a cautious user)
can run:

* :func:`empirical_per_tuple_l1` — realized ``max_t sum |lambda_phi(t)|`` on
  a concrete dataset.  **Not differentially private** (it reads the data);
  its only legitimate uses are testing that the analytic bound dominates and
  quantifying the bound's looseness.
* :func:`coefficient_l1_distance` — the exact Lemma-1 left-hand side for a
  concrete pair of tuples.
* :func:`verify_lemma1` — property-style check used by the hypothesis tests:
  for random tuple pairs, coefficient distance never exceeds ``Delta``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .objectives import RegressionObjective

__all__ = [
    "SensitivityReport",
    "empirical_per_tuple_l1",
    "coefficient_l1_distance",
    "verify_lemma1",
]


def empirical_per_tuple_l1(
    objective: RegressionObjective, X: np.ndarray, y: np.ndarray
) -> float:
    """Realized ``max_i sum_phi |lambda_phi(t_i)|`` on a dataset.

    .. warning::
       Reads the data — not private.  For testing only.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    best = 0.0
    for x_i, y_i in zip(X, y):
        best = max(best, objective.tuple_polynomial(x_i, y_i).l1_norm())
    return best


def coefficient_l1_distance(
    objective: RegressionObjective,
    tuple_a: tuple[np.ndarray, float],
    tuple_b: tuple[np.ndarray, float],
) -> float:
    """Exact ``sum_phi |lambda_phi(t_a) - lambda_phi(t_b)|`` for two tuples.

    This is the quantity Lemma 1 bounds by ``Delta``: replacing one tuple
    changes the database-level coefficient vector by exactly this much.
    """
    poly_a = objective.tuple_polynomial(*tuple_a)
    poly_b = objective.tuple_polynomial(*tuple_b)
    return (poly_a - poly_b).l1_norm()


@dataclass(frozen=True)
class SensitivityReport:
    """Comparison of the analytic bound against realized coefficient mass.

    Attributes
    ----------
    analytic_delta:
        The Lemma-1 bound used by Algorithm 1 (paper-style or tight).
    empirical_max_l1:
        Largest realized per-tuple coefficient L1 norm on the dataset.
    slack:
        ``analytic_delta / (2 * empirical_max_l1)`` — how loose the bound is
        on this data (>= 1 when the bound holds; the paper's ``B = d``
        bounds are typically several-fold loose).
    holds:
        Whether ``2 * empirical_max_l1 <= analytic_delta`` (the property the
        DP proof needs).
    """

    analytic_delta: float
    empirical_max_l1: float
    slack: float
    holds: bool


def verify_lemma1(
    objective: RegressionObjective,
    X: np.ndarray,
    y: np.ndarray,
    tight: bool = False,
) -> SensitivityReport:
    """Check the Lemma-1 bound against a concrete dataset.

    Returns a :class:`SensitivityReport`; ``report.holds`` must be True for
    any dataset satisfying the objective's domain assumptions — the test
    suite asserts this under hypothesis-generated data.
    """
    objective.validate(X, y)
    delta = objective.sensitivity(tight=tight)
    realized = empirical_per_tuple_l1(objective, X, y)
    slack = float("inf") if realized == 0.0 else delta / (2.0 * realized)
    return SensitivityReport(
        analytic_delta=delta,
        empirical_max_l1=realized,
        slack=slack,
        holds=bool(2.0 * realized <= delta * (1.0 + 1e-9)),
    )
