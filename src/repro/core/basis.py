"""Monomial basis enumeration: the sets ``Phi_j`` of Equation 2.

The paper represents an objective function over the model parameter
``omega = (omega_1, ..., omega_d)`` in the monomial basis

    Phi_j = { omega_1^c_1 * ... * omega_d^c_d  |  sum_l c_l = j },

i.e. all products of the parameter components with total degree ``j``
(``Phi_0 = {1}``, ``Phi_1 = {omega_1..omega_d}``, ``Phi_2`` the d(d+1)/2
distinct pairwise products, ...).  A monomial is identified with its exponent
tuple ``c`` throughout the library.

This module enumerates, counts, and indexes those bases.  Enumeration order
is deterministic (lexicographic in the underlying variable multiset), which
gives every coefficient vector a canonical layout — important because
Algorithm 1 draws one Laplace variate per basis element and tests need to
address individual coefficients.
"""

from __future__ import annotations

from itertools import combinations_with_replacement
from math import comb
from typing import Iterator, Sequence

from ..exceptions import DegreeError

__all__ = [
    "Exponents",
    "basis_size",
    "total_basis_size",
    "monomials_of_degree",
    "monomials_up_to_degree",
    "monomial_degree",
    "monomial_string",
    "multinomial_coefficient",
    "MonomialIndex",
]

#: A monomial's exponent tuple, one entry per parameter component.
Exponents = tuple[int, ...]


def _validate_dim(dim: int) -> int:
    dim = int(dim)
    if dim < 1:
        raise ValueError(f"dimension must be >= 1, got {dim}")
    return dim


def _validate_degree(degree: int) -> int:
    degree = int(degree)
    if degree < 0:
        raise DegreeError(f"degree must be >= 0, got {degree}")
    return degree


def basis_size(dim: int, degree: int) -> int:
    """Number of monomials in ``Phi_degree`` over ``dim`` variables.

    Equals the number of multisets of size ``degree`` over ``dim`` symbols:
    ``C(dim + degree - 1, degree)``.

    >>> basis_size(3, 2)   # {w1w1, w1w2, w1w3, w2w2, w2w3, w3w3}
    6
    """
    dim = _validate_dim(dim)
    degree = _validate_degree(degree)
    return comb(dim + degree - 1, degree)


def total_basis_size(dim: int, max_degree: int) -> int:
    """Number of monomials of degree 0..max_degree, ``C(dim + J, J)``."""
    dim = _validate_dim(dim)
    max_degree = _validate_degree(max_degree)
    return comb(dim + max_degree, max_degree)


def monomials_of_degree(dim: int, degree: int) -> Iterator[Exponents]:
    """Yield the exponent tuples of ``Phi_degree`` in canonical order.

    The canonical order lists monomials by the sorted multiset of their
    variable indices (e.g. for ``dim=2, degree=2``: ``w1^2, w1w2, w2^2``).

    >>> list(monomials_of_degree(2, 2))
    [(2, 0), (1, 1), (0, 2)]
    """
    dim = _validate_dim(dim)
    degree = _validate_degree(degree)
    if degree == 0:
        yield (0,) * dim
        return
    for variables in combinations_with_replacement(range(dim), degree):
        exponents = [0] * dim
        for v in variables:
            exponents[v] += 1
        yield tuple(exponents)


def monomials_up_to_degree(dim: int, max_degree: int) -> Iterator[Exponents]:
    """Yield all exponent tuples of degree 0..max_degree, degree-major order."""
    for degree in range(_validate_degree(max_degree) + 1):
        yield from monomials_of_degree(dim, degree)


def monomial_degree(exponents: Sequence[int]) -> int:
    """Total degree ``sum_l c_l`` of an exponent tuple."""
    return int(sum(exponents))


def monomial_string(exponents: Sequence[int], symbol: str = "w") -> str:
    """Human-readable rendering of a monomial, e.g. ``w1^2*w3``.

    >>> monomial_string((2, 0, 1))
    'w1^2*w3'
    >>> monomial_string((0, 0))
    '1'
    """
    parts = []
    for index, power in enumerate(exponents, start=1):
        if power == 0:
            continue
        if power == 1:
            parts.append(f"{symbol}{index}")
        else:
            parts.append(f"{symbol}{index}^{power}")
    return "*".join(parts) if parts else "1"


def multinomial_coefficient(exponents: Sequence[int]) -> int:
    """Multinomial coefficient ``(sum c)! / prod(c_l!)``.

    This is the coefficient of ``prod_l (x_l w_l)^{c_l}`` in the expansion of
    ``(x^T w)^{sum c}`` — the workhorse of the Taylor-expansion module, which
    must expand powers of the linear form ``g(t, w) = x^T w`` into the
    monomial basis.
    """
    total = monomial_degree(exponents)
    value = 1
    remaining = total
    for c in exponents:
        if c < 0:
            raise DegreeError(f"exponents must be non-negative, got {tuple(exponents)}")
        value *= comb(remaining, c)
        remaining -= c
    return value


class MonomialIndex:
    """Bidirectional map between exponent tuples and flat coefficient indices.

    Algorithm 1's coefficient vector ``(lambda_phi)_{phi in Phi_0..Phi_J}``
    needs a fixed layout; this class freezes the canonical enumeration of
    :func:`monomials_up_to_degree` into index lookups both ways.

    >>> idx = MonomialIndex(dim=2, max_degree=2)
    >>> len(idx)
    6
    >>> idx.position((1, 1))
    4
    >>> idx.exponents(4)
    (1, 1)
    """

    def __init__(self, dim: int, max_degree: int) -> None:
        self._dim = _validate_dim(dim)
        self._max_degree = _validate_degree(max_degree)
        self._forward: list[Exponents] = list(monomials_up_to_degree(dim, max_degree))
        self._backward: dict[Exponents, int] = {
            exps: i for i, exps in enumerate(self._forward)
        }

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def max_degree(self) -> int:
        return self._max_degree

    def __len__(self) -> int:
        return len(self._forward)

    def __iter__(self) -> Iterator[Exponents]:
        return iter(self._forward)

    def __contains__(self, exponents: Sequence[int]) -> bool:
        return tuple(exponents) in self._backward

    def position(self, exponents: Sequence[int]) -> int:
        """Flat index of an exponent tuple."""
        key = tuple(int(c) for c in exponents)
        try:
            return self._backward[key]
        except KeyError:
            raise DegreeError(
                f"monomial {key} is not in the basis of dim={self._dim}, "
                f"max_degree={self._max_degree}"
            ) from None

    def exponents(self, position: int) -> Exponents:
        """Exponent tuple at a flat index."""
        return self._forward[position]

    def degree_slice(self, degree: int) -> slice:
        """Slice of flat indices covering exactly ``Phi_degree``."""
        degree = _validate_degree(degree)
        if degree > self._max_degree:
            raise DegreeError(
                f"degree {degree} exceeds basis max_degree {self._max_degree}"
            )
        start = total_basis_size(self._dim, degree - 1) if degree > 0 else 0
        stop = total_basis_size(self._dim, degree)
        return slice(start, stop)
