"""Chebyshev alternative to the Taylor approximation (paper Section 8).

The paper's future-work section asks whether "alternative analytical tools
can lead to more accurate regression results" than the Taylor expansion.
This module implements the natural candidate: a degree-2 **Chebyshev series**
approximation of the softplus ``f_1(z) = log(1 + exp(z))`` over a working
interval ``[-r, r]``.

Taylor at 0 is optimal *locally*; the Chebyshev projection minimizes the
L2(Chebyshev-weight) error *uniformly over the interval*, so for tuples with
``|x^T w|`` near the interval edge it is a better fit.  The ablation bench
``bench_ablation_approximation`` compares the two end to end.

Coefficients are computed by Gauss–Chebyshev quadrature:

    c_k = (2 / N) * sum_{i=1..N} f(r cos(theta_i)) cos(k theta_i),
    theta_i = pi (i - 1/2) / N,

and the truncated series ``c_0/2 + c_1 T_1(z/r) + c_2 T_2(z/r)`` is expanded
into monomial coefficients ``a_0 + a_1 z + a_2 z^2`` so that the downstream
machinery (sensitivity analysis, Algorithm 1) is identical to the Taylor
path — only the three scalars change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..exceptions import ApproximationError

__all__ = ["QuadraticScalarApproximation", "chebyshev_quadratic", "chebyshev_softplus"]


@dataclass(frozen=True)
class QuadraticScalarApproximation:
    """A quadratic approximation ``a0 + a1 z + a2 z^2`` of a scalar function.

    ``interval`` records where the approximation is intended to be used;
    ``max_error`` is a numerically estimated uniform error bound over that
    interval (evaluated on a dense grid — adequate for reporting, not a
    certified bound).
    """

    a0: float
    a1: float
    a2: float
    interval: tuple[float, float]
    max_error: float

    def evaluate(self, z: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the quadratic at ``z``."""
        return self.a0 + self.a1 * z + self.a2 * np.asarray(z, dtype=float) ** 2

    def coefficients(self) -> tuple[float, float, float]:
        """``(a0, a1, a2)`` in monomial order."""
        return (self.a0, self.a1, self.a2)


def chebyshev_quadratic(
    fn: Callable[[np.ndarray], np.ndarray],
    radius: float = 1.0,
    nodes: int = 64,
) -> QuadraticScalarApproximation:
    """Degree-2 Chebyshev projection of ``fn`` on ``[-radius, radius]``.

    Parameters
    ----------
    fn:
        Vectorized scalar function.
    radius:
        Half-width of the approximation interval.  For the Functional
        Mechanism's logistic use the natural choice is an a-priori bound on
        ``|x^T w|``; with footnote-1 normalization ``||x||_2 <= 1`` and
        well-scaled parameters, ``radius = 1`` covers the bulk of scores.
    nodes:
        Gauss–Chebyshev quadrature nodes (>= 8 for stable coefficients).
    """
    radius = float(radius)
    if not (math.isfinite(radius) and radius > 0.0):
        raise ApproximationError(f"radius must be positive and finite, got {radius!r}")
    nodes = int(nodes)
    if nodes < 8:
        raise ApproximationError(f"need at least 8 quadrature nodes, got {nodes}")
    theta = math.pi * (np.arange(1, nodes + 1) - 0.5) / nodes
    u = np.cos(theta)  # Chebyshev points on [-1, 1]
    values = np.asarray(fn(radius * u), dtype=float)
    if values.shape != u.shape or not np.all(np.isfinite(values)):
        raise ApproximationError("fn must be vectorized and finite on the interval")
    c = np.array([
        2.0 / nodes * float(np.sum(values * np.cos(k * theta))) for k in range(3)
    ])
    # c0/2 + c1*T1(u) + c2*T2(u), with T1(u) = u, T2(u) = 2u^2 - 1, u = z/r.
    a0 = c[0] / 2.0 - c[2]
    a1 = c[1] / radius
    a2 = 2.0 * c[2] / radius**2
    grid = np.linspace(-radius, radius, 2001)
    approx = a0 + a1 * grid + a2 * grid**2
    max_error = float(np.max(np.abs(np.asarray(fn(grid), dtype=float) - approx)))
    return QuadraticScalarApproximation(
        a0=float(a0), a1=float(a1), a2=float(a2),
        interval=(-radius, radius), max_error=max_error,
    )


def chebyshev_softplus(radius: float = 1.0, nodes: int = 64) -> QuadraticScalarApproximation:
    """Degree-2 Chebyshev approximation of softplus on ``[-radius, radius]``.

    Example: at ``radius = 1`` the coefficients are close to (but not equal
    to) Taylor's ``(log 2, 1/2, 1/8)``, with a smaller worst-case error over
    the interval.
    """
    return chebyshev_quadratic(lambda z: np.logaddexp(0.0, z), radius=radius, nodes=nodes)
