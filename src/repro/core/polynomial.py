"""Multivariate polynomial algebra over the model parameter ``omega``.

Two representations are provided:

:class:`Polynomial`
    Sparse map ``{exponent tuple -> coefficient}`` supporting arbitrary
    finite degree ``J``.  This is the general vehicle of Algorithm 1 — the
    Functional Mechanism perturbs *these* coefficients.

:class:`QuadraticForm`
    Dense ``(M, alpha, beta)`` triple encoding
    ``f(w) = w^T M w + alpha^T w + beta`` with symmetric ``M``.  Degree-2
    objectives (linear regression exactly; logistic regression after the
    Section-5 truncation) are carried in this form because the Section-6
    post-processing (regularization, spectral trimming) and the closed-form
    minimizer live naturally in matrix language.

Conversions between the two are exact and round-trip: the coefficient of the
cross monomial ``w_j w_l`` (``j != l``) equals ``2 M[j, l]`` under symmetric
``M``, and the coefficient of ``w_j^2`` equals ``M[j, j]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..exceptions import (
    DegreeError,
    DimensionMismatchError,
    UnboundedObjectiveError,
)
from .basis import (
    Exponents,
    monomial_degree,
    monomial_string,
    multinomial_coefficient,
    monomials_of_degree,
)

__all__ = ["Polynomial", "QuadraticForm", "linear_form_power"]

#: Coefficients with magnitude below this are dropped during normalization.
_COEFF_EPS = 0.0  # exact arithmetic: keep everything that is not exactly 0


class Polynomial:
    """A sparse multivariate polynomial in ``dim`` variables.

    Instances are immutable: arithmetic returns new objects.  Coefficients
    exactly equal to zero are not stored.

    Parameters
    ----------
    dim:
        Number of variables (the model dimensionality ``d``).
    terms:
        Mapping from exponent tuples (length ``dim``) to coefficients.

    Examples
    --------
    >>> p = Polynomial(1, {(2,): 2.06, (1,): -2.34, (0,): 1.25})  # Figure 2
    >>> round(p.evaluate(np.array([117 / 206])), 6)
    0.585485
    """

    __slots__ = ("_dim", "_terms")

    def __init__(self, dim: int, terms: Mapping[Exponents, float] | None = None) -> None:
        dim = int(dim)
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self._dim = dim
        clean: dict[Exponents, float] = {}
        for exponents, coefficient in (terms or {}).items():
            key = tuple(int(c) for c in exponents)
            if len(key) != dim:
                raise DimensionMismatchError(dim, len(key), what="exponent tuple length")
            if any(c < 0 for c in key):
                raise DegreeError(f"exponents must be non-negative, got {key}")
            value = float(coefficient)
            if not math.isfinite(value):
                raise ValueError(f"coefficient for {key} is not finite: {value!r}")
            if value != 0.0:
                clean[key] = clean.get(key, 0.0) + value
                if clean[key] == 0.0:
                    del clean[key]
        self._terms = clean

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Number of variables."""
        return self._dim

    @property
    def degree(self) -> int:
        """Total degree (0 for the zero polynomial)."""
        if not self._terms:
            return 0
        return max(monomial_degree(e) for e in self._terms)

    @property
    def num_terms(self) -> int:
        """Number of stored (non-zero) monomials."""
        return len(self._terms)

    def coefficient(self, exponents: Sequence[int]) -> float:
        """Coefficient of a monomial (0.0 if absent)."""
        return self._terms.get(tuple(int(c) for c in exponents), 0.0)

    def terms(self) -> Iterator[tuple[Exponents, float]]:
        """Iterate ``(exponents, coefficient)`` pairs in degree-major order."""
        return iter(
            sorted(self._terms.items(), key=lambda kv: (monomial_degree(kv[0]), kv[0]))
        )

    def coefficients_of_degree(self, degree: int) -> dict[Exponents, float]:
        """All stored coefficients whose monomial has exactly this degree."""
        return {
            e: c for e, c in self._terms.items() if monomial_degree(e) == degree
        }

    def l1_norm(self) -> float:
        """Sum of absolute coefficient values, ``sum_phi |lambda_phi|``.

        This is the quantity Lemma 1 bounds per-tuple to obtain the
        sensitivity ``Delta``.
        """
        return math.fsum(abs(c) for c in self._terms.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._dim == other._dim and self._terms == other._terms

    def __hash__(self) -> int:
        return hash((self._dim, frozenset(self._terms.items())))

    def __repr__(self) -> str:
        if not self._terms:
            return f"Polynomial({self._dim}, 0)"
        rendered = " + ".join(
            f"{coeff:g}*{monomial_string(exps)}" for exps, coeff in self.terms()
        )
        return f"Polynomial({self._dim}, {rendered})"

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _check_same_dim(self, other: "Polynomial") -> None:
        if self._dim != other._dim:
            raise DimensionMismatchError(self._dim, other._dim, what="polynomial dim")

    def __add__(self, other: "Polynomial | float | int") -> "Polynomial":
        if isinstance(other, (int, float)):
            other = Polynomial(self._dim, {(0,) * self._dim: float(other)})
        if not isinstance(other, Polynomial):
            return NotImplemented
        self._check_same_dim(other)
        merged = dict(self._terms)
        for exps, coeff in other._terms.items():
            merged[exps] = merged.get(exps, 0.0) + coeff
        return Polynomial(self._dim, merged)

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial(self._dim, {e: -c for e, c in self._terms.items()})

    def __sub__(self, other: "Polynomial | float | int") -> "Polynomial":
        if isinstance(other, (int, float)):
            return self + (-float(other))
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other: float | int) -> "Polynomial":
        return (-self) + float(other)

    def __mul__(self, other: "Polynomial | float | int") -> "Polynomial":
        if isinstance(other, (int, float)):
            return Polynomial(
                self._dim, {e: c * float(other) for e, c in self._terms.items()}
            )
        if not isinstance(other, Polynomial):
            return NotImplemented
        self._check_same_dim(other)
        product: dict[Exponents, float] = {}
        for e1, c1 in self._terms.items():
            for e2, c2 in other._terms.items():
                key = tuple(a + b for a, b in zip(e1, e2))
                product[key] = product.get(key, 0.0) + c1 * c2
        return Polynomial(self._dim, product)

    __rmul__ = __mul__

    def __pow__(self, power: int) -> "Polynomial":
        power = int(power)
        if power < 0:
            raise DegreeError(f"polynomial power must be >= 0, got {power}")
        result = Polynomial.constant(self._dim, 1.0)
        base = self
        while power:
            if power & 1:
                result = result * base
            base = base * base if power > 1 else base
            power >>= 1
        return result

    # ------------------------------------------------------------------
    # Calculus
    # ------------------------------------------------------------------
    def evaluate(self, omega: np.ndarray) -> float:
        """Evaluate the polynomial at a parameter vector."""
        omega = self._as_point(omega)
        total = 0.0
        for exps, coeff in self._terms.items():
            value = coeff
            for w, c in zip(omega, exps):
                if c:
                    value *= w**c
            total += value
        return float(total)

    def gradient(self, omega: np.ndarray) -> np.ndarray:
        """Gradient vector at ``omega``."""
        omega = self._as_point(omega)
        grad = np.zeros(self._dim, dtype=float)
        for exps, coeff in self._terms.items():
            for k, c_k in enumerate(exps):
                if c_k == 0:
                    continue
                value = coeff * c_k
                for j, (w, c) in enumerate(zip(omega, exps)):
                    power = c - 1 if j == k else c
                    if power:
                        value *= w**power
                grad[k] += value
        return grad

    def hessian(self, omega: np.ndarray) -> np.ndarray:
        """Hessian matrix at ``omega``."""
        omega = self._as_point(omega)
        hess = np.zeros((self._dim, self._dim), dtype=float)
        for exps, coeff in self._terms.items():
            for k, c_k in enumerate(exps):
                if c_k == 0:
                    continue
                for l, c_l in enumerate(exps):
                    if k == l:
                        if c_k < 2:
                            continue
                        factor = c_k * (c_k - 1)
                    else:
                        if c_l == 0:
                            continue
                        factor = c_k * c_l
                    value = coeff * factor
                    for j, (w, c) in enumerate(zip(omega, exps)):
                        power = c
                        if j == k:
                            power -= 1
                        if j == l:
                            power -= 1
                        if power:
                            value *= w**power
                    hess[k, l] += value
        return hess

    def partial_derivative(self, variable: int) -> "Polynomial":
        """Symbolic partial derivative with respect to one variable."""
        variable = int(variable)
        if not 0 <= variable < self._dim:
            raise DimensionMismatchError(self._dim, variable, what="variable index")
        derived: dict[Exponents, float] = {}
        for exps, coeff in self._terms.items():
            c = exps[variable]
            if c == 0:
                continue
            new_exps = tuple(
                e - 1 if j == variable else e for j, e in enumerate(exps)
            )
            derived[new_exps] = derived.get(new_exps, 0.0) + coeff * c
        return Polynomial(self._dim, derived)

    def _as_point(self, omega: np.ndarray) -> np.ndarray:
        omega = np.asarray(omega, dtype=float).ravel()
        if omega.shape[0] != self._dim:
            raise DimensionMismatchError(self._dim, omega.shape[0], what="point dim")
        return omega

    # ------------------------------------------------------------------
    # Constructors / conversions
    # ------------------------------------------------------------------
    @staticmethod
    def zero(dim: int) -> "Polynomial":
        """The zero polynomial."""
        return Polynomial(dim, {})

    @staticmethod
    def constant(dim: int, value: float) -> "Polynomial":
        """A constant polynomial."""
        return Polynomial(dim, {(0,) * int(dim): float(value)})

    @staticmethod
    def linear(coefficients: Sequence[float] | np.ndarray, constant: float = 0.0) -> "Polynomial":
        """Build ``c^T w + constant`` from a coefficient vector."""
        coeffs = np.asarray(coefficients, dtype=float).ravel()
        dim = coeffs.shape[0]
        terms: dict[Exponents, float] = {}
        if constant:
            terms[(0,) * dim] = float(constant)
        for j, c in enumerate(coeffs):
            if c != 0.0:
                exps = tuple(1 if k == j else 0 for k in range(dim))
                terms[exps] = float(c)
        return Polynomial(dim, terms)

    @staticmethod
    def sum(polynomials: Iterable["Polynomial"], dim: int | None = None) -> "Polynomial":
        """Sum a (possibly empty) iterable of polynomials."""
        result: Polynomial | None = None
        for p in polynomials:
            result = p if result is None else result + p
        if result is None:
            if dim is None:
                raise ValueError("dim is required to sum an empty iterable")
            return Polynomial.zero(dim)
        return result

    def to_quadratic_form(self) -> "QuadraticForm":
        """Convert a degree<=2 polynomial into a :class:`QuadraticForm`.

        Raises :class:`~repro.exceptions.DegreeError` if any monomial has
        degree above 2.
        """
        if self.degree > 2:
            raise DegreeError(
                f"polynomial has degree {self.degree}; QuadraticForm requires <= 2"
            )
        d = self._dim
        M = np.zeros((d, d), dtype=float)
        alpha = np.zeros(d, dtype=float)
        beta = 0.0
        for exps, coeff in self._terms.items():
            degree = monomial_degree(exps)
            if degree == 0:
                beta = coeff
            elif degree == 1:
                alpha[exps.index(1)] = coeff
            else:
                nonzero = [j for j, c in enumerate(exps) if c]
                if len(nonzero) == 1:
                    j = nonzero[0]
                    M[j, j] = coeff
                else:
                    j, l = nonzero
                    M[j, l] = coeff / 2.0
                    M[l, j] = coeff / 2.0
        return QuadraticForm(M=M, alpha=alpha, beta=beta)


def linear_form_power(x: np.ndarray, power: int) -> Polynomial:
    """Expand ``(x^T w)^power`` into the monomial basis.

    This is the bridge between the Taylor expansion of Section 5 (powers of
    the linear form ``g(t, w) = x^T w``) and the coefficient space that
    Algorithm 1 perturbs.  By the multinomial theorem,

        (x^T w)^k = sum_{|c| = k} multinomial(c) * prod_j x_j^{c_j} * w^c.

    >>> linear_form_power(np.array([1.0, 2.0]), 2).coefficient((1, 1))
    4.0
    """
    x = np.asarray(x, dtype=float).ravel()
    power = int(power)
    if power < 0:
        raise DegreeError(f"power must be >= 0, got {power}")
    dim = x.shape[0]
    terms: dict[Exponents, float] = {}
    for exps in monomials_of_degree(dim, power):
        coeff = float(multinomial_coefficient(exps))
        for xj, c in zip(x, exps):
            if c:
                coeff *= xj**c
        if coeff != 0.0:
            terms[exps] = coeff
    return Polynomial(dim, terms)


@dataclass
class QuadraticForm:
    """Dense degree-2 objective ``f(w) = w^T M w + alpha^T w + beta``.

    ``M`` is stored symmetrized: the constructor averages ``M`` with its
    transpose, which leaves the represented function unchanged and gives the
    Section-6 machinery (eigendecomposition, regularization) a symmetric
    matrix to work on.
    """

    M: np.ndarray
    alpha: np.ndarray
    beta: float = 0.0

    def __post_init__(self) -> None:
        M = np.asarray(self.M, dtype=float)
        alpha = np.asarray(self.alpha, dtype=float).ravel()
        if M.ndim != 2 or M.shape[0] != M.shape[1]:
            raise DimensionMismatchError(
                M.shape[0] if M.ndim else 0,
                M.shape[1] if M.ndim == 2 else -1,
                what="quadratic matrix shape",
            )
        if alpha.shape[0] != M.shape[0]:
            raise DimensionMismatchError(M.shape[0], alpha.shape[0], what="alpha length")
        if not (np.all(np.isfinite(M)) and np.all(np.isfinite(alpha)) and math.isfinite(self.beta)):
            raise ValueError("QuadraticForm entries must be finite")
        self.M = (M + M.T) / 2.0
        self.alpha = alpha
        self.beta = float(self.beta)

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Number of variables."""
        return self.M.shape[0]

    def evaluate(self, omega: np.ndarray) -> float:
        """Evaluate at ``omega``."""
        omega = self._as_point(omega)
        return float(omega @ self.M @ omega + self.alpha @ omega + self.beta)

    def gradient(self, omega: np.ndarray) -> np.ndarray:
        """Gradient ``2 M w + alpha``."""
        omega = self._as_point(omega)
        return 2.0 * self.M @ omega + self.alpha

    def hessian(self, omega: np.ndarray | None = None) -> np.ndarray:
        """Constant Hessian ``2 M`` (argument accepted for API symmetry)."""
        return 2.0 * self.M

    def eigenvalues(self) -> np.ndarray:
        """Ascending eigenvalues of the symmetric matrix ``M``."""
        # Deferred import: core must stay importable without runtime.
        from ..runtime.backend import active_backend

        return active_backend().eigvalsh(self.M)

    def is_positive_definite(self, tol: float = 0.0) -> bool:
        """Whether all eigenvalues of ``M`` exceed ``tol``.

        A positive definite ``M`` is exactly the condition under which the
        quadratic objective has a unique, finite minimizer (Section 6).
        """
        return bool(self.eigenvalues().min() > tol)

    def minimize(self) -> np.ndarray:
        """Closed-form minimizer ``w* = -M^{-1} alpha / 2``.

        Raises
        ------
        UnboundedObjectiveError
            If ``M`` is not positive definite — the situation Section 6 is
            about: the noisy objective may have no minimum.  Callers wanting
            repair should go through
            :mod:`repro.core.postprocess` instead of calling this raw.
        """
        smallest = float(self.eigenvalues().min())
        if smallest <= 0.0:
            raise UnboundedObjectiveError(
                f"quadratic form is not positive definite "
                f"(min eigenvalue {smallest:.3e}); the noisy objective has no "
                f"finite minimizer — apply Section-6 post-processing"
            )
        from ..runtime.backend import active_backend

        return active_backend().solve(2.0 * self.M, -self.alpha)

    # ------------------------------------------------------------------
    def __add__(self, other: "QuadraticForm") -> "QuadraticForm":
        if not isinstance(other, QuadraticForm):
            return NotImplemented
        if other.dim != self.dim:
            raise DimensionMismatchError(self.dim, other.dim, what="QuadraticForm dim")
        return QuadraticForm(
            M=self.M + other.M, alpha=self.alpha + other.alpha, beta=self.beta + other.beta
        )

    def scale(self, factor: float) -> "QuadraticForm":
        """Return the form multiplied by a scalar."""
        factor = float(factor)
        return QuadraticForm(M=self.M * factor, alpha=self.alpha * factor, beta=self.beta * factor)

    def with_ridge(self, lam: float) -> "QuadraticForm":
        """Return the form with ``lam`` added to the diagonal of ``M``.

        This is Equation 13's regularization ``M* + lambda I``.
        """
        lam = float(lam)
        return QuadraticForm(
            M=self.M + lam * np.eye(self.dim), alpha=self.alpha.copy(), beta=self.beta
        )

    def to_polynomial(self) -> Polynomial:
        """Exact conversion to the sparse representation."""
        d = self.dim
        terms: dict[Exponents, float] = {}
        if self.beta != 0.0:
            terms[(0,) * d] = self.beta
        for j in range(d):
            if self.alpha[j] != 0.0:
                exps = tuple(1 if k == j else 0 for k in range(d))
                terms[exps] = float(self.alpha[j])
        for j in range(d):
            for l in range(j, d):
                if j == l:
                    coeff = float(self.M[j, j])
                else:
                    coeff = float(self.M[j, l] + self.M[l, j])
                if coeff != 0.0:
                    exps = tuple(
                        (2 if k == j else 0) if j == l else (1 if k in (j, l) else 0)
                        for k in range(d)
                    )
                    terms[exps] = coeff
        return Polynomial(d, terms)

    @staticmethod
    def zero(dim: int) -> "QuadraticForm":
        """The identically-zero quadratic form."""
        dim = int(dim)
        return QuadraticForm(M=np.zeros((dim, dim)), alpha=np.zeros(dim), beta=0.0)

    def copy(self) -> "QuadraticForm":
        """Deep copy."""
        return QuadraticForm(M=self.M.copy(), alpha=self.alpha.copy(), beta=self.beta)

    def _as_point(self, omega: np.ndarray) -> np.ndarray:
        omega = np.asarray(omega, dtype=float).ravel()
        if omega.shape[0] != self.dim:
            raise DimensionMismatchError(self.dim, omega.shape[0], what="point dim")
        return omega
