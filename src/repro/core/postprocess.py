"""Section 6: repairing noisy objectives that lost their minimizer.

Coefficient noise can make the quadratic matrix ``M*`` indefinite, in which
case ``argmin`` does not exist (Figure 2's parabola flips open-side-down).
All repairs below operate only on the *noisy* coefficients, so by the
post-processing property they cost no additional privacy budget — except the
Lemma-5 rerun strategy, which re-invokes the mechanism and therefore doubles
the privacy cost.

Strategies
----------
``NoRepair``
    Raise :class:`~repro.exceptions.UnboundedObjectiveError` when ``M*`` is
    not positive definite.  Useful for measuring *how often* repair is
    needed (ablation bench).
``Regularization`` (Section 6.1)
    Add ``lambda I`` with ``lambda = multiplier x noise_std`` (the paper's
    heuristic is ``multiplier = 4``; the noise std depends only on
    ``Delta / epsilon``, not on the data, so the choice is private).  Raises
    if the regularized matrix is still not positive definite.
``SpectralTrimming`` (Section 6.2)
    Regularize, eigendecompose ``M* + lambda I = Q^T Lambda Q``, drop the
    non-positive eigenvalues, minimize in the retained subspace
    ``V = -(1/2) Lambda'^{-1} Q' alpha*`` and return the minimum-norm
    preimage ``omega = Q'^T V``.  Always produces a finite answer (an
    all-non-positive spectrum yields the zero vector).
``RerunUntilBounded`` (Lemma 5)
    Redraw the noise until the objective is bounded.  Satisfies
    ``2 epsilon``-DP (the lemma's bound); exposed mainly so the benches can
    quantify the accuracy/privacy trade against the free repairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..exceptions import UnboundedObjectiveError
from .polynomial import QuadraticForm

__all__ = [
    "PostProcessResult",
    "PostProcessingStrategy",
    "NoRepair",
    "Regularization",
    "SpectralTrimming",
    "RerunUntilBounded",
    "get_strategy",
]

#: Eigenvalues below this are treated as non-positive during trimming.
_EIGEN_TOL = 1e-12


@dataclass(frozen=True)
class PostProcessResult:
    """Outcome of repairing + minimizing a noisy quadratic objective.

    Attributes
    ----------
    omega:
        The released model parameter.
    strategy:
        Name of the strategy that produced it.
    lam:
        Ridge constant applied (0.0 when none).
    trimmed:
        Number of eigenvalues removed by spectral trimming.
    attempts:
        Mechanism invocations consumed (1 except for the rerun strategy).
    privacy_cost_factor:
        Multiple of ``epsilon`` actually spent (2.0 for rerun, else 1.0).
    repaired:
        Whether the raw noisy objective was already well-posed (False) or
        needed intervention (True).
    """

    omega: np.ndarray
    strategy: str
    lam: float = 0.0
    trimmed: int = 0
    attempts: int = 1
    privacy_cost_factor: float = 1.0
    repaired: bool = False


class PostProcessingStrategy:
    """Interface: turn a noisy quadratic objective into a released ``omega``."""

    name: str = "abstract"

    def solve(
        self,
        noisy: QuadraticForm,
        noise_std: float,
        renoise: Optional[Callable[[], QuadraticForm]] = None,
    ) -> PostProcessResult:
        """Minimize ``noisy``, repairing it if necessary.

        Parameters
        ----------
        noisy:
            The perturbed objective from Algorithm 1.
        noise_std:
            Per-coefficient noise standard deviation (``sqrt(2) Delta/eps``);
            data-independent, so using it to size ``lambda`` is private.
        renoise:
            Zero-argument callable that re-runs Algorithm 1 and returns a
            fresh noisy objective.  Only the rerun strategy uses it.
        """
        raise NotImplementedError


class NoRepair(PostProcessingStrategy):
    """Fail loudly when the noisy objective is unbounded."""

    name = "none"

    def solve(
        self,
        noisy: QuadraticForm,
        noise_std: float,
        renoise: Optional[Callable[[], QuadraticForm]] = None,
    ) -> PostProcessResult:
        omega = noisy.minimize()  # raises UnboundedObjectiveError if indefinite
        return PostProcessResult(omega=omega, strategy=self.name)


@dataclass
class Regularization(PostProcessingStrategy):
    """Section 6.1: ridge repair with ``lambda = multiplier x noise_std``."""

    multiplier: float = 4.0

    def __post_init__(self) -> None:
        if self.multiplier < 0.0 or not math.isfinite(self.multiplier):
            raise ValueError(f"multiplier must be non-negative, got {self.multiplier!r}")

    name = "regularize"

    def solve(
        self,
        noisy: QuadraticForm,
        noise_std: float,
        renoise: Optional[Callable[[], QuadraticForm]] = None,
    ) -> PostProcessResult:
        already_fine = noisy.is_positive_definite(tol=_EIGEN_TOL)
        lam = self.multiplier * float(noise_std)
        regularized = noisy.with_ridge(lam)
        if not regularized.is_positive_definite(tol=_EIGEN_TOL):
            raise UnboundedObjectiveError(
                f"objective remains unbounded after lambda={lam:.4g} "
                f"regularization; use SpectralTrimming"
            )
        return PostProcessResult(
            omega=regularized.minimize(),
            strategy=self.name,
            lam=lam,
            repaired=not already_fine,
        )


@dataclass
class SpectralTrimming(PostProcessingStrategy):
    """Section 6.2: regularize, then drop non-positive eigenvalues.

    With ``M* + lambda I = Q^T Lambda Q`` and ``Lambda'`` / ``Q'`` the
    positive part, the repaired objective in ``V = Q' omega`` is

        g(V) = V^T Lambda' V + (alpha*^T Q'^T) V + beta*,

    minimized at ``V = -(1/2) Lambda'^{-1} Q' alpha*``; the returned
    parameter is the minimum-norm preimage ``omega = Q'^T V`` (the paper
    notes ``Q' omega = V`` is underdetermined).

    Hardening over the paper's letter: eigenvalues that are positive but
    *smaller than a fraction of the coefficient noise's standard deviation*
    are trimmed too (``noise_relative_tol``).  A retained eigenvalue near
    zero is curvature made of pure noise, and dividing ``alpha*`` by it
    releases an exploding parameter — the paper's own justification for
    trimming ("non-positive elements in Lambda are mostly due to noise")
    applies equally to these.  The tolerance depends only on
    ``Delta/epsilon``, so it is data-independent and costs no privacy.
    Set ``noise_relative_tol=0`` for the paper's literal rule.
    """

    multiplier: float = 4.0
    eigen_tol: float = _EIGEN_TOL
    noise_relative_tol: float = 0.5

    name = "spectral"

    def solve(
        self,
        noisy: QuadraticForm,
        noise_std: float,
        renoise: Optional[Callable[[], QuadraticForm]] = None,
    ) -> PostProcessResult:
        from ..runtime.backend import active_backend

        lam = self.multiplier * float(noise_std)
        regularized = noisy.with_ridge(lam)
        eigenvalues, eigenvectors = active_backend().eigh(regularized.M)
        tol = max(self.eigen_tol, self.noise_relative_tol * float(noise_std))
        keep = eigenvalues > tol
        trimmed = int(np.count_nonzero(~keep))
        already_fine = bool(keep.all()) and noisy.is_positive_definite(tol=self.eigen_tol)
        if trimmed == 0:
            return PostProcessResult(
                omega=regularized.minimize(),
                strategy=self.name,
                lam=lam,
                repaired=not already_fine,
            )
        if not keep.any():
            # No curvature survives the noise: the only defensible release is
            # the origin (data-independent), which the caller can detect via
            # trimmed == dim.
            return PostProcessResult(
                omega=np.zeros(noisy.dim),
                strategy=self.name,
                lam=lam,
                trimmed=trimmed,
                repaired=True,
            )
        # Rows of Q' are the retained eigenvectors (numpy returns them as
        # columns of `eigenvectors`).
        Q_kept = eigenvectors[:, keep].T
        retained = eigenvalues[keep]
        V = -0.5 * (Q_kept @ regularized.alpha) / retained
        omega = Q_kept.T @ V
        return PostProcessResult(
            omega=omega,
            strategy=self.name,
            lam=lam,
            trimmed=trimmed,
            repaired=True,
        )


@dataclass
class RerunUntilBounded(PostProcessingStrategy):
    """Lemma 5: redraw the noise until the objective has a minimizer.

    The released parameter satisfies ``(2 epsilon)``-DP, *not* ``epsilon``-DP
    — reflected in ``privacy_cost_factor = 2.0`` on the result.  A caller
    holding a :class:`~repro.privacy.budget.PrivacyBudget` should charge the
    doubled amount (the high-level estimators do this automatically).
    """

    max_attempts: int = 1000

    name = "rerun"

    def solve(
        self,
        noisy: QuadraticForm,
        noise_std: float,
        renoise: Optional[Callable[[], QuadraticForm]] = None,
    ) -> PostProcessResult:
        if renoise is None:
            raise ValueError("RerunUntilBounded requires a renoise callable")
        attempts = 1
        current = noisy
        while not current.is_positive_definite(tol=_EIGEN_TOL):
            if attempts >= self.max_attempts:
                raise UnboundedObjectiveError(
                    f"no bounded objective after {attempts} redraws; the noise "
                    f"scale likely dwarfs the data term — decrease Delta/epsilon "
                    f"or use SpectralTrimming"
                )
            current = renoise()
            attempts += 1
        return PostProcessResult(
            omega=current.minimize(),
            strategy=self.name,
            attempts=attempts,
            privacy_cost_factor=2.0,
            repaired=attempts > 1,
        )


_STRATEGIES: dict[str, Callable[[], PostProcessingStrategy]] = {
    "none": NoRepair,
    "regularize": Regularization,
    "spectral": SpectralTrimming,
    "rerun": RerunUntilBounded,
}


def get_strategy(name: str | PostProcessingStrategy) -> PostProcessingStrategy:
    """Resolve a strategy by name (``none|regularize|spectral|rerun``).

    Passing an already-constructed strategy returns it unchanged, so callers
    can supply customized instances (e.g. a different ``multiplier``).
    """
    if isinstance(name, PostProcessingStrategy):
        return name
    try:
        return _STRATEGIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown post-processing strategy {name!r}; "
            f"expected one of {sorted(_STRATEGIES)}"
        ) from None
