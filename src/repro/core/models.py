"""High-level differentially private estimators built on Algorithm 1/2.

:class:`FMLinearRegression` and :class:`FMLogisticRegression` package the
full pipeline of the paper — objective construction, sensitivity analysis,
coefficient perturbation, Section-6 repair, and minimization — behind a
``fit`` / ``predict`` interface mirroring the non-private models in
:mod:`repro.regression`, so the experiment harness can treat private and
non-private algorithms uniformly.

Inputs must already satisfy the paper's normalization (``||x||_2 <= 1`` and
target range); :class:`~repro.regression.preprocessing.FeatureScaler` /
``TargetScaler`` perform it.  ``fit`` validates and raises
:class:`~repro.exceptions.DomainError` otherwise — silently clipping inside
the estimator would hide a privacy bug, since the sensitivity bound assumes
the normalized domain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Literal, Optional

import numpy as np

from ..exceptions import DataError, NotFittedError
from ..privacy.budget import PrivacyBudget
from ..privacy.rng import RngLike, ensure_rng
from ..regression.logistic import sigmoid
from ..regression.metrics import mean_squared_error, misclassification_rate
from .mechanism import FunctionalMechanism, PerturbationRecord
from .objectives import (
    LinearRegressionObjective,
    LogisticRegressionObjective,
)
from .polynomial import Polynomial, QuadraticForm
from .postprocess import (
    PostProcessResult,
    PostProcessingStrategy,
    get_strategy,
)

__all__ = ["FMLinearRegression", "FMLogisticRegression"]


def _augment_intercept(X: np.ndarray) -> np.ndarray:
    """Footnote-2 augmentation ``x -> (x, 1)/sqrt(2)``.

    If ``||x||_2 <= 1`` then ``||(x, 1)/sqrt(2)||_2 <= 1``, so the augmented
    matrix satisfies footnote 1 at dimensionality ``d + 1`` and the standard
    sensitivity bounds apply unchanged.
    """
    n = X.shape[0]
    return np.hstack([X, np.ones((n, 1))]) / math.sqrt(2.0)


def _fit_quadratic_private(
    form: QuadraticForm,
    sensitivity: float,
    epsilon: float,
    strategy: PostProcessingStrategy,
    rng: np.random.Generator,
    budget: Optional[PrivacyBudget],
    ridge_lambda: float,
) -> tuple[np.ndarray, PerturbationRecord, PostProcessResult]:
    """Shared degree-2 pipeline: perturb, optionally ridge, repair, minimize."""
    mechanism = FunctionalMechanism(epsilon, rng=rng, budget=budget)
    noisy, record = mechanism.perturb_quadratic(form, sensitivity)
    # A renoise callable for the Lemma-5 strategy.  Budget handling: Lemma 5
    # prices the *whole* rerun loop at 2 epsilon, so redraws must not each
    # charge the accountant — they go through a budget-less mechanism and the
    # surcharge is applied once below.
    renoise_mechanism = FunctionalMechanism(epsilon, rng=rng, budget=None)

    def renoise() -> QuadraticForm:
        redrawn, _ = renoise_mechanism.perturb_quadratic(form, sensitivity)
        return redrawn.with_ridge(ridge_lambda) if ridge_lambda else redrawn

    if ridge_lambda:
        # A data-independent ridge term joins the objective after noise;
        # it is post-processing and costs nothing.
        noisy = noisy.with_ridge(ridge_lambda)
    result = strategy.solve(noisy, record.noise_std, renoise=renoise)
    if result.privacy_cost_factor > 1.0 and budget is not None:
        budget.spend(
            epsilon * (result.privacy_cost_factor - 1.0),
            note="Lemma-5 rerun surcharge",
        )
    return result.omega, record, result


@dataclass
class FMLinearRegression:
    """Differentially private linear regression (Sections 4.2 and 6).

    Parameters
    ----------
    epsilon:
        Privacy budget.  The release satisfies ``epsilon``-DP, except with
        ``post_processing="rerun"`` where Lemma 5 gives ``2 epsilon``-DP.
    post_processing:
        ``"spectral"`` (default, Section 6.2), ``"regularize"`` (6.1),
        ``"rerun"`` (Lemma 5) or ``"none"`` — or a constructed strategy.
    tight_sensitivity:
        Use the ``(1 + sqrt(d))^2`` bound instead of the paper's
        ``(1 + d)^2`` (both valid under footnote-1 normalization; the tight
        bound injects less noise).  Default False = paper-faithful.
    ridge_lambda:
        Optional extra data-independent ridge term added to the *noisy*
        objective (free post-processing).  This implements the FM-ridge
        extension; 0 reproduces the paper.
    fit_intercept:
        Footnote-2 extension: learn ``y ~ x^T w + b`` by augmenting each
        feature vector to ``(x, 1)/sqrt(2)`` (which keeps ``||x'||_2 <= 1``,
        so the Lemma-1 bound applies at dimensionality ``d + 1``).  The
        paper's Definition 1 (no intercept) is the default.
    budget:
        Optional accountant charged on ``fit``.
    rng:
        Seed or generator.

    Examples
    --------
    >>> rng = np.random.default_rng(7)
    >>> X = rng.uniform(0, 0.5, size=(2000, 2)); w = np.array([0.8, -0.4])
    >>> y = np.clip(X @ w + rng.normal(0, 0.05, 2000), -1, 1)
    >>> model = FMLinearRegression(epsilon=2.0, rng=0).fit(X, y)
    >>> model.coef_.shape
    (2,)
    """

    epsilon: float
    post_processing: str | PostProcessingStrategy = "spectral"
    tight_sensitivity: bool = False
    ridge_lambda: float = 0.0
    fit_intercept: bool = False
    budget: Optional[PrivacyBudget] = None
    rng: RngLike = None
    coef_: Optional[np.ndarray] = field(default=None, init=False)
    intercept_: float = field(default=0.0, init=False)
    record_: Optional[PerturbationRecord] = field(default=None, init=False)
    postprocess_: Optional[PostProcessResult] = field(default=None, init=False)
    objective_: Optional[LinearRegressionObjective] = field(default=None, init=False)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "FMLinearRegression":
        """Fit privately on normalized data (``||x|| <= 1``, ``y in [-1,1]``)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] == 0:
            raise DataError(f"X must be a non-empty 2-d matrix, got shape {X.shape}")
        # Validate the caller's normalization *before* any augmentation so
        # the error message refers to the user's feature space.
        LinearRegressionObjective(X.shape[1]).validate(X, y)
        X_fit = _augment_intercept(X) if self.fit_intercept else X
        objective = LinearRegressionObjective(X_fit.shape[1])
        strategy = get_strategy(self.post_processing)
        omega, record, result = _fit_quadratic_private(
            form=objective.aggregate_quadratic(X_fit, y),
            sensitivity=objective.sensitivity(tight=self.tight_sensitivity),
            epsilon=self.epsilon,
            strategy=strategy,
            rng=ensure_rng(self.rng),
            budget=self.budget,
            ridge_lambda=self.ridge_lambda,
        )
        if self.fit_intercept:
            self.coef_ = omega[:-1] / math.sqrt(2.0)
            self.intercept_ = float(omega[-1]) / math.sqrt(2.0)
        else:
            self.coef_ = omega
            self.intercept_ = 0.0
        self.record_ = record
        self.postprocess_ = result
        self.objective_ = objective
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict ``x^T w + b`` for each row."""
        if self.coef_ is None:
            raise NotFittedError(type(self).__name__)
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.coef_.shape[0]:
            raise DataError(
                f"X must be 2-d with {self.coef_.shape[0]} columns, got shape {X.shape}"
            )
        return X @ self.coef_ + self.intercept_

    def score_mse(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean square error (the paper's linear metric)."""
        return mean_squared_error(y, self.predict(X))

    @property
    def effective_epsilon(self) -> float:
        """Budget actually consumed by the fit (doubles under Lemma-5 rerun)."""
        if self.postprocess_ is None:
            raise NotFittedError(type(self).__name__)
        return self.epsilon * self.postprocess_.privacy_cost_factor


@dataclass
class FMLogisticRegression:
    """Differentially private logistic regression (Sections 5 and 6).

    Parameters
    ----------
    epsilon:
        Privacy budget (see :class:`FMLinearRegression` for the rerun
        exception).
    approximation:
        ``"taylor"`` — the paper's degree-2 expansion at 0 — or
        ``"chebyshev"`` — the Section-8 alternative on ``[-radius, radius]``.
    order:
        Even truncation order; 2 (default) is the paper.  Orders above 2
        use the general polynomial path: perturbation over the full basis
        ``Phi_0..Phi_J`` and projected-gradient minimization over a compact
        ball (a data-independent feasible set, hence free post-processing)
        because the Section-6 spectral repair only applies to quadratics.
    radius:
        Chebyshev interval half-width (ignored for Taylor).
    search_radius:
        Ball radius for the ``order > 2`` projected solver.
    """

    epsilon: float
    approximation: Literal["taylor", "chebyshev"] = "taylor"
    order: int = 2
    radius: float = 1.0
    post_processing: str | PostProcessingStrategy = "spectral"
    tight_sensitivity: bool = False
    ridge_lambda: float = 0.0
    fit_intercept: bool = False
    search_radius: float = 10.0
    budget: Optional[PrivacyBudget] = None
    rng: RngLike = None
    coef_: Optional[np.ndarray] = field(default=None, init=False)
    intercept_: float = field(default=0.0, init=False)
    record_: Optional[PerturbationRecord] = field(default=None, init=False)
    postprocess_: Optional[PostProcessResult] = field(default=None, init=False)
    objective_: Optional[LogisticRegressionObjective] = field(default=None, init=False)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "FMLogisticRegression":
        """Fit privately on normalized features and boolean labels."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] == 0:
            raise DataError(f"X must be a non-empty 2-d matrix, got shape {X.shape}")
        LogisticRegressionObjective(X.shape[1]).validate(X, y)
        X_fit = _augment_intercept(X) if self.fit_intercept else X
        objective = LogisticRegressionObjective(
            X_fit.shape[1],
            approximation=self.approximation,
            order=self.order,
            radius=self.radius,
        )
        sensitivity = objective.sensitivity(tight=self.tight_sensitivity)
        generator = ensure_rng(self.rng)
        if self.order == 2:
            strategy = get_strategy(self.post_processing)
            omega, record, result = _fit_quadratic_private(
                form=objective.aggregate_quadratic(X_fit, y),
                sensitivity=sensitivity,
                epsilon=self.epsilon,
                strategy=strategy,
                rng=generator,
                budget=self.budget,
                ridge_lambda=self.ridge_lambda,
            )
        else:
            mechanism = FunctionalMechanism(self.epsilon, rng=generator, budget=self.budget)
            noisy, record = mechanism.perturb_polynomial(
                objective.aggregate_polynomial(X_fit, y), sensitivity
            )
            omega = self._minimize_on_ball(noisy, generator)
            result = PostProcessResult(omega=omega, strategy="projected-ball")
        if self.fit_intercept:
            self.coef_ = omega[:-1] / math.sqrt(2.0)
            self.intercept_ = float(omega[-1]) / math.sqrt(2.0)
        else:
            self.coef_ = omega
            self.intercept_ = 0.0
        self.record_ = record
        self.postprocess_ = result
        self.objective_ = objective
        return self

    def _minimize_on_ball(
        self, poly: Polynomial, generator: np.random.Generator
    ) -> np.ndarray:
        """Projected gradient descent over ``||w|| <= search_radius``.

        A noisy degree->2 polynomial may be unbounded below on R^d, but it is
        continuous on the (data-independent) closed ball, so a minimizer
        exists there.  Multi-start from the origin and a few random interior
        points guards against bad local minima.  Evaluation is vectorized
        over the (exponent-matrix, coefficient-vector) representation: the
        sparse Polynomial's per-term Python loops are too slow for the
        hundreds of monomials a degree-4 basis carries.
        """
        exponents = []
        coefficients = []
        for exps, coeff in poly.terms():
            exponents.append(exps)
            coefficients.append(coeff)
        E = np.asarray(exponents, dtype=float)          # (T, d)
        c = np.asarray(coefficients, dtype=float)        # (T,)

        def value_and_grad(w: np.ndarray) -> tuple[float, np.ndarray]:
            # powers[t, j] = w_j ** E[t, j]; term values are row products.
            with np.errstate(divide="ignore", invalid="ignore"):
                powers = np.where(E > 0, w[None, :] ** E, 1.0)
            term_values = powers.prod(axis=1)
            value = float(c @ term_values)
            grad = np.zeros(poly.dim)
            for j in range(poly.dim):
                mask = E[:, j] > 0
                if not mask.any():
                    continue
                # d/dw_j of term t: coeff * E[t,j] * w_j^(E-1) * rest.
                rest = term_values[mask]
                wj = w[j]
                if wj != 0.0:
                    partial = rest / wj * E[mask, j]
                else:
                    # Recompute exactly for the w_j = 0 boundary.
                    reduced = powers[mask].copy()
                    expo = E[mask, j] - 1.0
                    reduced[:, j] = np.where(expo > 0, 0.0, 1.0)
                    partial = reduced.prod(axis=1) * E[mask, j]
                grad[j] = float(c[mask] @ partial)
            return value, grad

        radius = float(self.search_radius)
        starts = [np.zeros(poly.dim)]
        starts.extend(
            generator.uniform(-radius / 4, radius / 4, size=poly.dim) for _ in range(3)
        )
        best_w: np.ndarray | None = None
        best_f = math.inf
        for start in starts:
            w = start.copy()
            fw, grad = value_and_grad(w)
            step = 0.1
            for _ in range(500):
                grad_norm = float(np.linalg.norm(grad))
                if grad_norm < 1e-10:
                    break
                improved = False
                while step > 1e-12:
                    candidate = w - step * grad
                    norm = float(np.linalg.norm(candidate))
                    if norm > radius:
                        candidate = candidate * (radius / norm)
                    f_candidate, g_candidate = value_and_grad(candidate)
                    if f_candidate < fw - 1e-12:
                        w, fw, grad = candidate, f_candidate, g_candidate
                        step = min(step * 2.0, 1.0)
                        improved = True
                        break
                    step *= 0.5
                if not improved:
                    break
            if fw < best_f:
                best_w, best_f = w, fw
        assert best_w is not None
        return best_w

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw scores ``x^T w + b``."""
        if self.coef_ is None:
            raise NotFittedError(type(self).__name__)
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.coef_.shape[0]:
            raise DataError(
                f"X must be 2-d with {self.coef_.shape[0]} columns, got shape {X.shape}"
            )
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """``Pr[y = 1 | x]`` under the released parameter."""
        return sigmoid(self.decision_function(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Hard labels at the paper's 0.5 threshold."""
        return (self.predict_proba(X) > 0.5).astype(float)

    def score_misclassification(self, X: np.ndarray, y: np.ndarray) -> float:
        """Misclassification rate (the paper's logistic metric)."""
        return misclassification_rate(y, self.predict(X))

    @property
    def effective_epsilon(self) -> float:
        """Budget actually consumed by the fit."""
        if self.postprocess_ is None:
            raise NotFittedError(type(self).__name__)
        return self.epsilon * self.postprocess_.privacy_cost_factor
