"""Objective functions in polynomial form for the Functional Mechanism.

An objective here is the paper's ``f_D(w) = sum_i f(t_i, w)`` together with
everything Algorithm 1 needs:

* the per-tuple polynomial representation ``f(t_i, .)`` (Equation 3),
* a fast vectorized aggregation to the database-level coefficient vector,
* the Lemma-1 sensitivity bound derived from the *declared* domains
  (``||x||_2 <= 1``, target range) — never from the realized data,
* the exact (un-approximated) loss for diagnostics and baseline fitting.

Two concrete objectives implement the paper's case studies:

:class:`LinearRegressionObjective`
    Definition 1 — exactly quadratic, sensitivity ``2(d + 1)^2``
    (Section 4.2).

:class:`LogisticRegressionObjective`
    Definition 2 — degree-2 approximation (Taylor at 0, Section 5, or the
    Chebyshev alternative of Section 8's future work), sensitivity
    ``d^2/4 + 3d`` for the Taylor coefficients (Section 5.3).  Higher even
    Taylor orders are supported as an extension.

Both also expose a ``tight=True`` sensitivity variant: the paper bounds
``sum_j |x_j| <= d`` although footnote-1 normalization guarantees the
stronger ``sum_j |x_j| <= sqrt(d)``; the tight bound injects less noise while
preserving the same DP guarantee, and is compared in an ablation bench.
"""

from __future__ import annotations

import abc
import math
from typing import Literal

import numpy as np

from ..exceptions import DataError, DegreeError, DomainError
from .basis import monomials_of_degree, multinomial_coefficient
from .chebyshev import QuadraticScalarApproximation, chebyshev_softplus
from .polynomial import Polynomial, QuadraticForm
from .taylor import softplus_term, taylor_polynomial

__all__ = [
    "RegressionObjective",
    "LinearRegressionObjective",
    "LogisticRegressionObjective",
    "NORM_TOLERANCE",
]

#: Slack allowed when validating ``||x||_2 <= 1`` and target ranges.
NORM_TOLERANCE = 1e-9


def _validate_matrix(X: np.ndarray, dim: int) -> np.ndarray:
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise DataError(f"X must be 2-d, got ndim={X.ndim}")
    if X.shape[1] != dim:
        raise DataError(f"X has {X.shape[1]} columns; objective has dim {dim}")
    if not np.all(np.isfinite(X)):
        raise DataError("X must be finite")
    return X


class RegressionObjective(abc.ABC):
    """Abstract per-tuple decomposable objective with polynomial coefficients.

    Parameters
    ----------
    dim:
        Number of model parameters ``d`` (= number of features).
    """

    #: Which accuracy metric the paper uses for this task.
    task: str = "abstract"

    def __init__(self, dim: int) -> None:
        dim = int(dim)
        if dim < 1:
            raise DataError(f"dim must be >= 1, got {dim}")
        self._dim = dim

    @property
    def dim(self) -> int:
        """Model dimensionality ``d``."""
        return self._dim

    @property
    @abc.abstractmethod
    def degree(self) -> int:
        """Degree ``J`` of the polynomial representation."""

    # ------------------------------------------------------------------
    # Polynomial representation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def tuple_polynomial(self, x: np.ndarray, y: float) -> Polynomial:
        """The per-tuple cost ``f(t, .)`` in the monomial basis."""

    def aggregate_polynomial(self, X: np.ndarray, y: np.ndarray) -> Polynomial:
        """Database-level coefficients ``sum_i lambda_phi(t_i)`` as a polynomial.

        The base implementation sums per-tuple polynomials; subclasses
        override with vectorized versions.
        """
        X = _validate_matrix(X, self.dim)
        y = np.asarray(y, dtype=float).ravel()
        return Polynomial.sum(
            (self.tuple_polynomial(x_i, y_i) for x_i, y_i in zip(X, y)),
            dim=self.dim,
        )

    def aggregate_quadratic(self, X: np.ndarray, y: np.ndarray) -> QuadraticForm:
        """Degree-2 aggregation as a :class:`QuadraticForm` (fast path).

        Only valid when :attr:`degree` is at most 2.
        """
        if self.degree > 2:
            raise DegreeError(
                f"objective has degree {self.degree}; use aggregate_polynomial"
            )
        return self.aggregate_polynomial(X, y).to_quadratic_form()

    # ------------------------------------------------------------------
    # Sensitivity (Lemma 1)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def per_tuple_l1_bound(self, tight: bool = False) -> float:
        """Upper bound on ``sum_phi |lambda_phi(t)|`` over the tuple domain."""

    def sensitivity(self, tight: bool = False) -> float:
        """Lemma-1 sensitivity ``Delta = 2 * max_t sum_phi |lambda_phi(t)|``."""
        return 2.0 * self.per_tuple_l1_bound(tight=tight)

    # ------------------------------------------------------------------
    # Exact loss and validation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def true_loss(self, omega: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        """The exact (un-approximated) objective ``f_D(w)``."""

    def validate(self, X: np.ndarray, y: np.ndarray) -> None:
        """Check footnote-1/definition domain assumptions; raise on violation."""
        X = _validate_matrix(X, self.dim)
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise DataError(f"X has {X.shape[0]} rows but y has {y.shape[0]} entries")
        norms = np.linalg.norm(X, axis=1)
        if norms.size and float(norms.max()) > 1.0 + NORM_TOLERANCE:
            raise DomainError(
                f"feature vectors must satisfy ||x||_2 <= 1 (footnote 1); "
                f"max norm is {float(norms.max()):.6f} — apply FeatureScaler first"
            )
        self._validate_target(y)

    @abc.abstractmethod
    def _validate_target(self, y: np.ndarray) -> None:
        """Task-specific target-domain check."""


class LinearRegressionObjective(RegressionObjective):
    """Definition 1: ``f(t, w) = (y - x^T w)^2`` — exactly degree 2.

    Expanding per tuple (Section 4.2):

        f(t, w) = y^2 - sum_j (2 y x_j) w_j + sum_{j,l} (x_j x_l) w_j w_l,

    so the coefficient of ``1`` is ``y^2``, of ``w_j`` is ``-2 y x_j``, and
    of the monomial ``w_j w_l`` is ``x_j x_l`` (``2 x_j x_l`` for ``j != l``
    after merging the symmetric pair).

    >>> obj = LinearRegressionObjective(dim=1)
    >>> X = np.array([[1.0], [0.9], [-0.5]]); y = np.array([0.4, 0.3, -1.0])
    >>> q = obj.aggregate_quadratic(X, y)   # the paper's Figure-2 example
    >>> (round(float(q.M[0, 0]), 2), round(float(q.alpha[0]), 2), round(q.beta, 2))
    (2.06, -2.34, 1.25)
    """

    task = "linear"

    @property
    def degree(self) -> int:
        return 2

    def tuple_polynomial(self, x: np.ndarray, y: float) -> Polynomial:
        x = np.asarray(x, dtype=float).ravel()
        if x.shape[0] != self.dim:
            raise DataError(f"x has length {x.shape[0]}; objective has dim {self.dim}")
        y = float(y)
        quad = QuadraticForm(M=np.outer(x, x), alpha=-2.0 * y * x, beta=y * y)
        return quad.to_polynomial()

    def aggregate_polynomial(self, X: np.ndarray, y: np.ndarray) -> Polynomial:
        return self.aggregate_quadratic(X, y).to_polynomial()

    def aggregate_quadratic(self, X: np.ndarray, y: np.ndarray) -> QuadraticForm:
        X = _validate_matrix(X, self.dim)
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise DataError(f"X has {X.shape[0]} rows but y has {y.shape[0]} entries")
        return QuadraticForm(M=X.T @ X, alpha=-2.0 * X.T @ y, beta=float(y @ y))

    def per_tuple_l1_bound(self, tight: bool = False) -> float:
        """``y^2 + 2|y| sum|x_j| + (sum|x_j|)^2 <= 1 + 2 B + B^2 = (1 + B)^2``.

        The paper takes ``B = d`` (each ``|x_j| <= 1``), giving
        ``(1 + d)^2`` and hence ``Delta = 2 (d + 1)^2``; footnote-1
        normalization actually guarantees ``B = sqrt(d)``, the ``tight``
        variant.
        """
        B = math.sqrt(self.dim) if tight else float(self.dim)
        return (1.0 + B) ** 2

    def true_loss(self, omega: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        X = _validate_matrix(X, self.dim)
        y = np.asarray(y, dtype=float).ravel()
        residuals = y - X @ np.asarray(omega, dtype=float).ravel()
        return float(residuals @ residuals)

    def _validate_target(self, y: np.ndarray) -> None:
        if y.size and float(np.abs(y).max()) > 1.0 + NORM_TOLERANCE:
            raise DomainError(
                f"linear-regression target must lie in [-1, 1] (Definition 1); "
                f"max |y| is {float(np.abs(y).max()):.6f} — apply TargetScaler first"
            )


class LogisticRegressionObjective(RegressionObjective):
    """Definition 2 via a quadratic (or higher even order) approximation.

    The per-tuple cost ``log(1 + exp(x^T w)) - y x^T w`` is approximated as

        a0 + a1 (x^T w) + a2 (x^T w)^2 - y (x^T w)          (degree 2)

    with Taylor coefficients ``(log 2, 1/2, 1/8)`` (Section 5) or Chebyshev
    coefficients over ``[-radius, radius]`` (the Section-8 alternative).
    ``order > 2`` (even, Taylor only) keeps more terms of Equation 9.

    Parameters
    ----------
    dim:
        Number of features.
    approximation:
        ``"taylor"`` (paper default) or ``"chebyshev"``.
    order:
        Truncation order; must be a positive even integer so the leading
        term is ``+ c_K (x^T w)^K`` with ``c_K`` of known sign (odd leading
        terms are always unbounded below).
    radius:
        Chebyshev approximation interval half-width (ignored for Taylor).
    """

    task = "logistic"

    def __init__(
        self,
        dim: int,
        approximation: Literal["taylor", "chebyshev"] = "taylor",
        order: int = 2,
        radius: float = 1.0,
    ) -> None:
        super().__init__(dim)
        order = int(order)
        if order < 2 or order % 2 != 0:
            raise DegreeError(
                f"order must be a positive even integer (>= 2), got {order}"
            )
        if approximation not in ("taylor", "chebyshev"):
            raise ValueError(
                f"approximation must be 'taylor' or 'chebyshev', got {approximation!r}"
            )
        if approximation == "chebyshev" and order != 2:
            raise DegreeError("the Chebyshev alternative is implemented at order 2")
        self.approximation = approximation
        self.order = order
        self.radius = float(radius)
        self._term = softplus_term()
        if approximation == "taylor":
            self._coeffs = self._term.taylor_coefficients(order)
        else:
            cheb: QuadraticScalarApproximation = chebyshev_softplus(radius=self.radius)
            self._coeffs = list(cheb.coefficients())
            self.chebyshev_ = cheb

    @property
    def degree(self) -> int:
        return self.order

    @property
    def softplus_coefficients(self) -> tuple[float, ...]:
        """Approximation coefficients ``(a_0, a_1, ..., a_K)`` of softplus."""
        return tuple(self._coeffs)

    def tuple_polynomial(self, x: np.ndarray, y: float) -> Polynomial:
        x = np.asarray(x, dtype=float).ravel()
        if x.shape[0] != self.dim:
            raise DataError(f"x has length {x.shape[0]}; objective has dim {self.dim}")
        y = float(y)
        if self.approximation == "taylor":
            poly = taylor_polynomial(self._term, x, self.order)
        else:
            a0, a1, a2 = self._coeffs
            poly = (
                Polynomial.constant(self.dim, a0)
                + Polynomial.linear(a1 * x)
                + Polynomial.linear(x) * Polynomial.linear(a2 * x)
            )
        return poly - Polynomial.linear(y * x)

    def aggregate_quadratic(self, X: np.ndarray, y: np.ndarray) -> QuadraticForm:
        if self.order != 2:
            raise DegreeError(
                f"order-{self.order} objective is not quadratic; "
                f"use aggregate_polynomial"
            )
        X = _validate_matrix(X, self.dim)
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise DataError(f"X has {X.shape[0]} rows but y has {y.shape[0]} entries")
        a0, a1, a2 = self._coeffs
        n = X.shape[0]
        return QuadraticForm(
            M=a2 * (X.T @ X),
            alpha=a1 * X.sum(axis=0) - X.T @ y,
            beta=a0 * n,
        )

    def aggregate_polynomial(self, X: np.ndarray, y: np.ndarray) -> Polynomial:
        if self.order == 2:
            return self.aggregate_quadratic(X, y).to_polynomial()
        # Vectorized aggregation for the higher-order extension: the
        # coefficient of monomial c (|c| = k) in sum_i a_k (x_i^T w)^k is
        # a_k * multinomial(c) * sum_i prod_j x_ij^c_j, so one column-product
        # reduction per basis monomial replaces the per-tuple Python loop.
        X = _validate_matrix(X, self.dim)
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise DataError(f"X has {X.shape[0]} rows but y has {y.shape[0]} entries")
        n, d = X.shape
        terms: dict[tuple[int, ...], float] = {(0,) * d: self._coeffs[0] * n}
        for k, a in enumerate(self._coeffs):
            if k == 0 or a == 0.0:
                continue
            for exps in monomials_of_degree(d, k):
                columns = np.ones(n)
                for j, c in enumerate(exps):
                    if c == 1:
                        columns = columns * X[:, j]
                    elif c > 1:
                        columns = columns * X[:, j] ** c
                value = a * multinomial_coefficient(exps) * float(columns.sum())
                terms[exps] = terms.get(exps, 0.0) + value
        moment = X.T @ y
        for j in range(d):
            exps = tuple(1 if i == j else 0 for i in range(d))
            terms[exps] = terms.get(exps, 0.0) - float(moment[j])
        return Polynomial(d, terms)

    def per_tuple_l1_bound(self, tight: bool = False) -> float:
        """``sum_{k>=1} |a_k| B^k + B`` with ``B = max_t sum_j |x_j|``.

        At order 2 / Taylor / ``B = d`` this is the paper's Section-5.3 value
        ``d/2 + d^2/8 + d``, i.e. ``Delta = d^2/4 + 3 d``.  The constant
        coefficient ``a_0`` is identical for every tuple and cancels in the
        neighbor difference, so (matching the paper) it does not enter the
        bound.
        """
        B = math.sqrt(self.dim) if tight else float(self.dim)
        bound = B  # the -y x^T w term, |y| <= 1
        for k, a in enumerate(self._coeffs):
            if k >= 1:
                bound += abs(a) * B**k
        return bound

    def true_loss(self, omega: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        X = _validate_matrix(X, self.dim)
        y = np.asarray(y, dtype=float).ravel()
        z = X @ np.asarray(omega, dtype=float).ravel()
        return float(np.sum(np.logaddexp(0.0, z) - y * z))

    def approximate_loss(self, omega: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        """The truncated objective ``f_hat_D(w)`` (what FM actually perturbs)."""
        X = _validate_matrix(X, self.dim)
        y = np.asarray(y, dtype=float).ravel()
        z = X @ np.asarray(omega, dtype=float).ravel()
        approx = np.zeros_like(z)
        for k, a in enumerate(self._coeffs):
            if a != 0.0:
                approx = approx + a * z**k
        return float(np.sum(approx - y * z))

    def _validate_target(self, y: np.ndarray) -> None:
        unique = np.unique(y)
        if unique.size and not np.all(np.isin(unique, (0.0, 1.0))):
            raise DomainError(
                f"logistic-regression target must be boolean {{0, 1}} "
                f"(Definition 2); got values {unique[:5]!r}"
            )
