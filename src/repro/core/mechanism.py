"""Algorithm 1: the Functional Mechanism's coefficient perturbation.

Given the database-level polynomial coefficients ``lambda_phi = sum_i
lambda_phi(t_i)`` and the Lemma-1 sensitivity ``Delta``, the mechanism adds
one i.i.d. ``Lap(Delta / epsilon)`` draw to **every** monomial coefficient of
the basis ``Phi_0 .. Phi_J`` — including coefficients whose aggregated value
happens to be zero; skipping them would leak which coefficients vanished.

The perturbed objective is then handed to a minimizer; by Theorem 1 the
noisy coefficient vector is ``epsilon``-differentially private and everything
derived from it (including the Section-6 repairs) is post-processing.

Three perturbation entry points are provided:

* :meth:`FunctionalMechanism.perturb_quadratic` — the dense fast path for
  degree-2 objectives (both of the paper's case studies).  Noise layout
  follows Section 6.1: one draw for the constant, one per linear
  coefficient, one per *distinct* quadratic monomial — the off-diagonal
  draw ``w`` is split as ``w/2`` onto ``M[j, l]`` and ``M[l, j]`` so the
  monomial coefficient ``2 M[j, l]`` receives exactly ``w``.
* :meth:`FunctionalMechanism.perturb_polynomial` — the general path for any
  finite degree ``J`` (used by the higher-order Taylor extension).
* :meth:`FunctionalMechanism.perturb_from_accumulator` — the streaming path:
  the database-level coefficients come from precomputed
  :mod:`repro.engine` moment statistics instead of a fresh data pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import math

import numpy as np

from ..exceptions import InvalidBudgetError, SensitivityError
from ..privacy.budget import PrivacyBudget
from ..privacy.rng import RngLike, ensure_rng
from .basis import MonomialIndex
from .polynomial import Polynomial, QuadraticForm

__all__ = ["FunctionalMechanism", "PerturbationRecord"]


@dataclass(frozen=True)
class PerturbationRecord:
    """Bookkeeping for one Algorithm-1 invocation.

    Attributes
    ----------
    epsilon:
        Budget spent.
    sensitivity:
        The ``Delta`` used for calibration.
    noise_scale:
        Laplace scale ``Delta / epsilon``.
    noise_std:
        Standard deviation ``sqrt(2) * scale`` of each coefficient's noise —
        Section 6.1 sets the regularization constant to 4x this value.
    coefficients_perturbed:
        Number of independent Laplace draws (= basis size).
    """

    epsilon: float
    sensitivity: float
    noise_scale: float
    noise_std: float
    coefficients_perturbed: int


class FunctionalMechanism:
    """Coefficient-space Laplace perturbation (Algorithm 1).

    Parameters
    ----------
    epsilon:
        Privacy budget spent per perturbation call.
    rng:
        Seed or generator for the noise stream.
    budget:
        Optional :class:`~repro.privacy.budget.PrivacyBudget`; each
        perturbation charges ``epsilon`` against it.

    Examples
    --------
    >>> from repro.core.objectives import LinearRegressionObjective
    >>> obj = LinearRegressionObjective(dim=2)
    >>> X = np.array([[0.3, 0.4], [0.1, 0.2]]); y = np.array([0.5, -0.5])
    >>> mech = FunctionalMechanism(epsilon=1.0, rng=42)
    >>> noisy, record = mech.perturb_quadratic(
    ...     obj.aggregate_quadratic(X, y), obj.sensitivity())
    >>> record.coefficients_perturbed   # 1 constant + 2 linear + 3 quadratic
    6
    """

    def __init__(
        self,
        epsilon: float,
        rng: RngLike = None,
        budget: Optional[PrivacyBudget] = None,
    ) -> None:
        epsilon = float(epsilon)
        if not math.isfinite(epsilon) or epsilon <= 0.0:
            raise InvalidBudgetError(f"epsilon must be positive and finite, got {epsilon!r}")
        self.epsilon = epsilon
        self.budget = budget
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    def _prepare(self, sensitivity: float, note: str) -> float:
        sensitivity = float(sensitivity)
        if not math.isfinite(sensitivity) or sensitivity <= 0.0:
            raise SensitivityError(
                f"sensitivity must be positive and finite, got {sensitivity!r}"
            )
        if self.budget is not None:
            self.budget.spend(self.epsilon, note=note)
        return sensitivity / self.epsilon

    def perturb_quadratic(
        self, form: QuadraticForm, sensitivity: float
    ) -> tuple[QuadraticForm, PerturbationRecord]:
        """Perturb a degree-2 objective; returns (noisy form, record)."""
        scale = self._prepare(sensitivity, note="FunctionalMechanism.perturb_quadratic")
        d = form.dim
        beta_noise = float(self._rng.laplace(0.0, scale))
        alpha_noise = self._rng.laplace(0.0, scale, size=d)
        # One draw per distinct quadratic monomial: d diagonal + d(d-1)/2
        # upper-triangle cross terms.  The cross-term draw w perturbs the
        # monomial coefficient 2*M[j,l]; splitting w/2 per matrix entry keeps
        # M symmetric and the monomial perturbation exactly w.
        draws = self._rng.laplace(0.0, scale, size=(d, d))
        upper = np.triu(draws, k=1) / 2.0
        M_noise = np.diag(np.diag(draws)) + upper + upper.T
        noisy = QuadraticForm(
            M=form.M + M_noise,
            alpha=form.alpha + alpha_noise,
            beta=form.beta + beta_noise,
        )
        record = PerturbationRecord(
            epsilon=self.epsilon,
            sensitivity=float(sensitivity),
            noise_scale=scale,
            noise_std=math.sqrt(2.0) * scale,
            coefficients_perturbed=1 + d + d * (d + 1) // 2,
        )
        return noisy, record

    def perturb_from_accumulator(
        self, accumulator, objective, tight_sensitivity: bool = False
    ) -> tuple[QuadraticForm, PerturbationRecord]:
        """Algorithm 1 from precomputed sufficient statistics.

        Parameters
        ----------
        accumulator:
            Anything exposing ``quadratic_form(objective)`` — a
            :class:`repro.engine.MomentAccumulator` or
            :class:`repro.engine.MomentSnapshot`.  The data pass happened
            when the accumulator ingested its chunks; this call only maps
            the stored moments to coefficient blocks and perturbs them.
        objective:
            The degree-2 objective whose coefficient map and Lemma-1
            sensitivity apply.
        tight_sensitivity:
            Use the ``sqrt(d)`` L1 bound instead of the paper's ``d`` bound.

        The noise stream and record are identical to handing the same
        coefficients to :meth:`perturb_quadratic` directly — the privacy
        guarantee does not depend on how the coefficients were aggregated.
        """
        form = accumulator.quadratic_form(objective)
        return self.perturb_quadratic(form, objective.sensitivity(tight=tight_sensitivity))

    def perturb_polynomial(
        self, poly: Polynomial, sensitivity: float, max_degree: int | None = None
    ) -> tuple[Polynomial, PerturbationRecord]:
        """Perturb a general finite-degree objective.

        Every monomial of the basis ``Phi_0 .. Phi_J`` receives a draw,
        where ``J`` is ``max_degree`` (default: the polynomial's degree).
        The basis size grows as ``C(d + J, J)``; callers with ``J = 2``
        should prefer :meth:`perturb_quadratic`.
        """
        scale = self._prepare(sensitivity, note="FunctionalMechanism.perturb_polynomial")
        degree = poly.degree if max_degree is None else int(max_degree)
        index = MonomialIndex(poly.dim, degree)
        noise = self._rng.laplace(0.0, scale, size=len(index))
        terms = {exps: poly.coefficient(exps) + float(noise[i]) for i, exps in enumerate(index)}
        noisy = Polynomial(poly.dim, terms)
        record = PerturbationRecord(
            epsilon=self.epsilon,
            sensitivity=float(sensitivity),
            noise_scale=scale,
            noise_std=math.sqrt(2.0) * scale,
            coefficients_perturbed=len(index),
        )
        return noisy, record
