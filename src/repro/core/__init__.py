"""The Functional Mechanism: the paper's primary contribution.

Layering (bottom to top):

* :mod:`~repro.core.basis` / :mod:`~repro.core.polynomial` — the monomial
  basis ``Phi_j`` and polynomial algebra the mechanism perturbs.
* :mod:`~repro.core.taylor` / :mod:`~repro.core.chebyshev` — Section-5
  approximation of non-polynomial objectives (+ the Section-8 alternative).
* :mod:`~repro.core.objectives` / :mod:`~repro.core.sensitivity` — the two
  case-study objectives with their Lemma-1 sensitivity bounds.
* :mod:`~repro.core.mechanism` — Algorithm 1 (coefficient perturbation).
* :mod:`~repro.core.postprocess` — Section-6 repair of unbounded noisy
  objectives.
* :mod:`~repro.core.models` — ``fit``/``predict`` estimators tying it all
  together.
"""

from .basis import (
    MonomialIndex,
    basis_size,
    monomial_degree,
    monomial_string,
    monomials_of_degree,
    monomials_up_to_degree,
    multinomial_coefficient,
    total_basis_size,
)
from .chebyshev import QuadraticScalarApproximation, chebyshev_quadratic, chebyshev_softplus
from .mechanism import FunctionalMechanism, PerturbationRecord
from .models import FMLinearRegression, FMLogisticRegression
from .objectives import (
    LinearRegressionObjective,
    LogisticRegressionObjective,
    RegressionObjective,
)
from .polynomial import Polynomial, QuadraticForm, linear_form_power
from .postprocess import (
    NoRepair,
    PostProcessResult,
    PostProcessingStrategy,
    Regularization,
    RerunUntilBounded,
    SpectralTrimming,
    get_strategy,
)
from .sensitivity import (
    SensitivityReport,
    coefficient_l1_distance,
    empirical_per_tuple_l1,
    verify_lemma1,
)
from .taylor import (
    ScalarTerm,
    logistic_truncation_error_bound,
    logistic_truncation_error_bound_two_sided,
    softplus,
    softplus_derivatives,
    taylor_polynomial,
)

__all__ = [
    "MonomialIndex",
    "basis_size",
    "monomial_degree",
    "monomial_string",
    "monomials_of_degree",
    "monomials_up_to_degree",
    "multinomial_coefficient",
    "total_basis_size",
    "QuadraticScalarApproximation",
    "chebyshev_quadratic",
    "chebyshev_softplus",
    "FunctionalMechanism",
    "PerturbationRecord",
    "FMLinearRegression",
    "FMLogisticRegression",
    "LinearRegressionObjective",
    "LogisticRegressionObjective",
    "RegressionObjective",
    "Polynomial",
    "QuadraticForm",
    "linear_form_power",
    "NoRepair",
    "PostProcessResult",
    "PostProcessingStrategy",
    "Regularization",
    "RerunUntilBounded",
    "SpectralTrimming",
    "get_strategy",
    "SensitivityReport",
    "coefficient_l1_distance",
    "empirical_per_tuple_l1",
    "verify_lemma1",
    "ScalarTerm",
    "logistic_truncation_error_bound",
    "logistic_truncation_error_bound_two_sided",
    "softplus",
    "softplus_derivatives",
    "taylor_polynomial",
]
