"""Data normalization and resampling per the paper's conventions.

Footnote 1 of the paper assumes every feature vector satisfies
``||x_i||_2 <= 1``, enforced by rescaling each attribute as

    x_ij  ->  (x_ij - alpha_j) / ((beta_j - alpha_j) * sqrt(d)),

where ``[alpha_j, beta_j]`` is the *declared domain* of attribute ``X_j``
(not the realized min/max of the data — deriving bounds from the data would
itself leak, so :class:`FeatureScaler` takes explicit bounds and only offers
data-derived bounds behind an explicitly non-private constructor).
Definition 1 additionally assumes the regression target lies in ``[-1, 1]``
(:class:`TargetScaler`), and Definition 2 assumes a boolean target
(:func:`binarize_labels`).

The module also provides the 5-fold cross-validation used throughout
Section 7 (:class:`KFold`) and a simple :func:`train_test_split`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..exceptions import DataError, DomainError
from ..privacy.rng import RngLike, ensure_rng

__all__ = [
    "FeatureScaler",
    "TargetScaler",
    "binarize_labels",
    "train_test_split",
    "KFold",
    "max_feature_norm",
]


def _as_matrix(X: np.ndarray) -> np.ndarray:
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise DataError(f"feature matrix must be 2-d, got ndim={X.ndim}")
    return X


@dataclass
class FeatureScaler:
    """Footnote-1 feature normalization onto the unit L2 ball.

    Parameters
    ----------
    lower, upper:
        Per-attribute domain bounds ``alpha_j`` and ``beta_j``.  Attributes
        with a degenerate domain (``alpha_j == beta_j``) are mapped to 0.

    After :meth:`transform`, every feature lies in ``[0, 1/sqrt(d)]`` so the
    full vector satisfies ``||x||_2 <= 1`` — the assumption both sensitivity
    bounds (``2(d+1)^2`` and ``d^2/4 + 3d``) rely on.

    Examples
    --------
    >>> scaler = FeatureScaler(lower=np.zeros(4), upper=np.full(4, 10.0))
    >>> X = np.full((2, 4), 10.0)
    >>> bool(np.allclose(np.linalg.norm(scaler.transform(X), axis=1), 1.0))
    True
    """

    lower: np.ndarray
    upper: np.ndarray
    clip: bool = True

    def __post_init__(self) -> None:
        self.lower = np.asarray(self.lower, dtype=float).ravel()
        self.upper = np.asarray(self.upper, dtype=float).ravel()
        if self.lower.shape != self.upper.shape:
            raise DataError("lower and upper bounds must have the same length")
        if np.any(self.upper < self.lower):
            bad = int(np.argmax(self.upper < self.lower))
            raise DomainError(
                f"attribute {bad}: upper bound {self.upper[bad]!r} below lower "
                f"bound {self.lower[bad]!r}"
            )

    @property
    def dim(self) -> int:
        """Number of attributes the scaler was declared for."""
        return self.lower.shape[0]

    @classmethod
    def from_data_non_private(cls, X: np.ndarray, clip: bool = True) -> "FeatureScaler":
        """Derive bounds from the realized data.

        .. warning::
           Data-derived bounds are **not differentially private**.  This
           constructor exists for testing and for the non-private baselines;
           private pipelines must declare domains up front (as the paper's
           IPUMS attributes do).
        """
        X = _as_matrix(X)
        return cls(lower=X.min(axis=0), upper=X.max(axis=0), clip=clip)

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the footnote-1 map; result rows satisfy ``||x||_2 <= 1``."""
        X = _as_matrix(X)
        if X.shape[1] != self.dim:
            raise DataError(
                f"feature matrix has {X.shape[1]} columns; scaler expects {self.dim}"
            )
        span = self.upper - self.lower
        safe_span = np.where(span > 0, span, 1.0)
        scaled = (X - self.lower) / (safe_span * np.sqrt(self.dim))
        scaled = np.where(span > 0, scaled, 0.0)
        if self.clip:
            scaled = np.clip(scaled, 0.0, 1.0 / np.sqrt(self.dim))
        else:
            limit = 1.0 / np.sqrt(self.dim)
            if np.any(scaled < -1e-12) or np.any(scaled > limit + 1e-12):
                raise DomainError(
                    "data fell outside the declared attribute domains and "
                    "clip=False; widen the domains or enable clipping"
                )
        return scaled


@dataclass
class TargetScaler:
    """Map the regression target onto ``[-1, 1]`` (Definition 1) and back.

    ``transform`` maps ``[lower, upper] -> [-1, 1]`` affinely;
    ``inverse_transform`` undoes it, letting examples report errors in the
    original units while the mechanism operates on the normalized scale.
    """

    lower: float
    upper: float
    clip: bool = True

    def __post_init__(self) -> None:
        self.lower = float(self.lower)
        self.upper = float(self.upper)
        if not self.upper > self.lower:
            raise DomainError(
                f"target domain must have upper > lower, got "
                f"[{self.lower!r}, {self.upper!r}]"
            )

    def transform(self, y: np.ndarray) -> np.ndarray:
        """Affinely map ``[lower, upper]`` to ``[-1, 1]``."""
        y = np.asarray(y, dtype=float).ravel()
        scaled = 2.0 * (y - self.lower) / (self.upper - self.lower) - 1.0
        if self.clip:
            scaled = np.clip(scaled, -1.0, 1.0)
        elif np.any(np.abs(scaled) > 1.0 + 1e-12):
            raise DomainError("target fell outside its declared domain and clip=False")
        return scaled

    def inverse_transform(self, y_scaled: np.ndarray) -> np.ndarray:
        """Map ``[-1, 1]`` back to the original target units."""
        y_scaled = np.asarray(y_scaled, dtype=float).ravel()
        return (y_scaled + 1.0) / 2.0 * (self.upper - self.lower) + self.lower


def binarize_labels(y: np.ndarray, threshold: float) -> np.ndarray:
    """Map a numeric target to {0, 1} labels by thresholding.

    The paper's logistic experiments binarize Annual Income this way
    ("values higher than a predefined threshold are mapped to 1").
    """
    y = np.asarray(y, dtype=float).ravel()
    return (y > float(threshold)).astype(float)


def max_feature_norm(X: np.ndarray) -> float:
    """Largest row L2 norm — used by tests to assert footnote-1 compliance."""
    X = _as_matrix(X)
    if X.shape[0] == 0:
        return 0.0
    return float(np.linalg.norm(X, axis=1).max())


def train_test_split(
    n: int,
    test_fraction: float = 0.2,
    rng: RngLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Return shuffled (train_indices, test_indices) over ``range(n)``."""
    if n < 2:
        raise DataError(f"need at least 2 samples to split, got {n}")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction!r}")
    gen = ensure_rng(rng)
    order = gen.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    n_test = min(n_test, n - 1)
    return np.sort(order[n_test:]), np.sort(order[:n_test])


class KFold:
    """K-fold cross-validation splitter (the paper uses 5 folds, 50 repeats).

    Parameters
    ----------
    n_splits:
        Number of folds; every index appears in exactly one test fold.
    shuffle:
        Whether to permute indices before folding.
    rng:
        Seed or generator for the shuffle.

    Examples
    --------
    >>> folds = list(KFold(n_splits=5, rng=0).split(100))
    >>> sorted(len(test) for _, test in folds)
    [20, 20, 20, 20, 20]
    """

    def __init__(self, n_splits: int = 5, shuffle: bool = True, rng: RngLike = None) -> None:
        n_splits = int(n_splits)
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = bool(shuffle)
        self._rng = ensure_rng(rng)

    def split(self, n: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` for each fold."""
        n = int(n)
        if n < self.n_splits:
            raise DataError(
                f"cannot split {n} samples into {self.n_splits} folds"
            )
        indices = self._rng.permutation(n) if self.shuffle else np.arange(n)
        fold_sizes = np.full(self.n_splits, n // self.n_splits, dtype=int)
        fold_sizes[: n % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield np.sort(train), np.sort(test)
            start += size
