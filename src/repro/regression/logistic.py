"""Non-private logistic regression (the NoPrivacy baseline for Definition 2).

Implements the standard maximum-likelihood logistic model

    w* = argmin_w sum_i [ log(1 + exp(x_i^T w)) - y_i x_i^T w ]

via damped Newton (default) or gradient descent, both from
:mod:`repro.regression.solvers`.  All loss computations are numerically
stable: ``log(1 + exp(z))`` goes through ``logaddexp`` and the sigmoid is
evaluated piecewise to avoid overflow on ``|z|`` large — the paper's
normalized features keep ``|x^T w|`` small, but noisy baselines (DPME/FP
synthetic data) can push iterates far out.

An optional L2 term makes the loss strongly convex, guaranteeing a unique
optimum even on separable data (otherwise Newton drifts towards infinite
weights and stops on the gradient tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional

import numpy as np

from ..exceptions import DataError, NotFittedError
from .metrics import misclassification_rate
from .solvers import GradientDescent, NewtonSolver, SolverResult

__all__ = [
    "sigmoid",
    "logistic_loss",
    "logistic_gradient",
    "logistic_hessian",
    "LogisticRegressionModel",
]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function ``1 / (1 + exp(-z))``."""
    z = np.asarray(z, dtype=float)
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


def logistic_loss(
    omega: np.ndarray,
    X: np.ndarray,
    y: np.ndarray,
    l2: float = 0.0,
    sample_weight: np.ndarray | None = None,
) -> float:
    """Definition-2 cost ``sum_i log(1 + exp(x_i^T w)) - y_i x_i^T w`` (+ L2).

    Note the *sum* (not mean) convention, matching the paper's
    ``f_D(w) = sum_i f(t_i, w)``.  ``sample_weight`` weights each tuple's
    contribution (histogram baselines regress on weighted cell centers).
    """
    z = X @ omega
    per_tuple = np.logaddexp(0.0, z) - y * z
    if sample_weight is not None:
        per_tuple = per_tuple * sample_weight
    loss = float(np.sum(per_tuple))
    if l2:
        loss += 0.5 * l2 * float(omega @ omega)
    return loss


def logistic_gradient(
    omega: np.ndarray,
    X: np.ndarray,
    y: np.ndarray,
    l2: float = 0.0,
    sample_weight: np.ndarray | None = None,
) -> np.ndarray:
    """Gradient ``X^T (sigmoid(Xw) - y)`` (+ L2 term)."""
    residual = sigmoid(X @ omega) - y
    if sample_weight is not None:
        residual = residual * sample_weight
    grad = X.T @ residual
    if l2:
        grad = grad + l2 * omega
    return grad


def logistic_hessian(
    omega: np.ndarray,
    X: np.ndarray,
    y: np.ndarray,
    l2: float = 0.0,
    sample_weight: np.ndarray | None = None,
) -> np.ndarray:
    """Hessian ``X^T diag(p(1-p)) X`` (+ L2 term); ``y`` unused but kept for symmetry."""
    p = sigmoid(X @ omega)
    weights = p * (1.0 - p)
    if sample_weight is not None:
        weights = weights * sample_weight
    hess = (X * weights[:, None]).T @ X
    if l2:
        hess = hess + l2 * np.eye(X.shape[1])
    return hess


def _validate_xy(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if X.ndim != 2:
        raise DataError(f"X must be 2-d, got ndim={X.ndim}")
    if X.shape[0] != y.shape[0]:
        raise DataError(f"X has {X.shape[0]} rows but y has {y.shape[0]} entries")
    if X.shape[0] == 0:
        raise DataError("cannot fit on an empty dataset")
    unique = np.unique(y)
    if not np.all(np.isin(unique, (0.0, 1.0))):
        raise DataError(
            f"logistic regression requires boolean labels in {{0, 1}}, "
            f"got values {unique[:5]!r}"
        )
    return X, y


@dataclass
class LogisticRegressionModel:
    """Standard binary logistic regression fitted by Newton or GD.

    Parameters
    ----------
    solver:
        ``"newton"`` (default, quadratic convergence) or ``"gd"``.
    l2:
        Optional L2 regularization strength (0 = the paper's plain MLE).
    max_iterations, tolerance:
        Forwarded to the underlying solver.

    Examples
    --------
    >>> X = np.array([[-1.0], [-0.5], [0.5], [1.0]])
    >>> y = np.array([0.0, 0.0, 1.0, 1.0])
    >>> model = LogisticRegressionModel().fit(X, y)
    >>> bool(model.predict(np.array([[2.0]]))[0] == 1.0)
    True
    """

    solver: Literal["newton", "gd"] = "newton"
    l2: float = 0.0
    max_iterations: int = 100
    tolerance: float = 1e-8
    coef_: Optional[np.ndarray] = field(default=None, init=False)
    result_: Optional[SolverResult] = field(default=None, init=False)

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "LogisticRegressionModel":
        """Fit the model on boolean labels ``y`` (optionally weighted)."""
        X, y = _validate_xy(X, y)
        if sample_weight is not None:
            sample_weight = np.asarray(sample_weight, dtype=float).ravel()
            if sample_weight.shape[0] != X.shape[0]:
                raise DataError(
                    f"sample_weight has length {sample_weight.shape[0]}, "
                    f"expected {X.shape[0]}"
                )
            if not np.all(np.isfinite(sample_weight)) or np.any(sample_weight < 0):
                raise DataError("sample_weight must be finite and non-negative")
        x0 = np.zeros(X.shape[1])
        if self.solver == "newton":
            engine = NewtonSolver(max_iterations=self.max_iterations, tolerance=self.tolerance)
            result = engine.minimize(
                lambda w: logistic_loss(w, X, y, self.l2, sample_weight),
                lambda w: logistic_gradient(w, X, y, self.l2, sample_weight),
                lambda w: logistic_hessian(w, X, y, self.l2, sample_weight),
                x0,
            )
        elif self.solver == "gd":
            engine = GradientDescent(
                max_iterations=max(self.max_iterations, 500), tolerance=self.tolerance
            )
            result = engine.minimize(
                lambda w: logistic_loss(w, X, y, self.l2, sample_weight),
                lambda w: logistic_gradient(w, X, y, self.l2, sample_weight),
                x0,
            )
        else:
            raise ValueError(f"unknown solver {self.solver!r}; use 'newton' or 'gd'")
        self.coef_ = result.x
        self.result_ = result
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw scores ``x^T w``."""
        if self.coef_ is None:
            raise NotFittedError(type(self).__name__)
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.coef_.shape[0]:
            raise DataError(
                f"X must be 2-d with {self.coef_.shape[0]} columns, got shape {X.shape}"
            )
        return X @ self.coef_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability ``Pr[y = 1 | x] = exp(x^T w) / (1 + exp(x^T w))``."""
        return sigmoid(self.decision_function(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Hard labels under the paper's 0.5 probability threshold."""
        return (self.predict_proba(X) > 0.5).astype(float)

    def score_misclassification(self, X: np.ndarray, y: np.ndarray) -> float:
        """Misclassification rate on ``(X, y)`` — the paper's logistic metric."""
        return misclassification_rate(y, self.predict(X))
