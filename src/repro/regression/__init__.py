"""Non-private regression engine: solvers, models, metrics, preprocessing.

This package is both a substrate (the Functional Mechanism's estimators and
all synthetic-data baselines fit models through it) and the source of the
paper's *NoPrivacy* comparison line.
"""

from .features import PolynomialFeatureMap
from .linear import LinearRegression, RidgeRegression
from .logistic import (
    LogisticRegressionModel,
    logistic_gradient,
    logistic_hessian,
    logistic_loss,
    sigmoid,
)
from .metrics import (
    accuracy,
    log_loss,
    mean_absolute_error,
    mean_squared_error,
    misclassification_rate,
    r2_score,
    root_mean_squared_error,
)
from .preprocessing import (
    FeatureScaler,
    KFold,
    TargetScaler,
    binarize_labels,
    max_feature_norm,
    train_test_split,
)
from .solvers import GradientDescent, NewtonSolver, SolverResult, solve_quadratic

__all__ = [
    "PolynomialFeatureMap",
    "LinearRegression",
    "RidgeRegression",
    "LogisticRegressionModel",
    "logistic_gradient",
    "logistic_hessian",
    "logistic_loss",
    "sigmoid",
    "accuracy",
    "log_loss",
    "mean_absolute_error",
    "mean_squared_error",
    "misclassification_rate",
    "r2_score",
    "root_mean_squared_error",
    "FeatureScaler",
    "KFold",
    "TargetScaler",
    "binarize_labels",
    "max_feature_norm",
    "train_test_split",
    "GradientDescent",
    "NewtonSolver",
    "SolverResult",
    "solve_quadratic",
]
