"""Non-private linear regression (the NoPrivacy baseline for Definition 1).

Ordinary least squares solved through the normal equations
``(X^T X) w = X^T y`` with an SVD least-squares fallback when the Gram
matrix is singular (e.g. duplicated attributes after subsetting).  Ridge
regression is included both as a baseline in its own right and because the
Section-6.1 regularization of the Functional Mechanism is exactly a ridge
term on the noisy quadratic objective.

The paper's Definition 1 omits the intercept (footnote 2 notes the extension
is mechanical); ``fit_intercept=True`` implements that extension by
augmenting the feature matrix with a constant column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..exceptions import DataError, NotFittedError
from .metrics import mean_squared_error

__all__ = ["LinearRegression", "RidgeRegression"]


def _solve_normal_equations(
    gram: np.ndarray,
    moment: np.ndarray,
    design: np.ndarray,
    target: np.ndarray,
    finite_fallback: bool = True,
) -> np.ndarray:
    """Solve ``gram @ w = moment`` with an SVD least-squares fallback.

    The fallback fires when the (possibly regularized) Gram matrix is
    exactly singular — LAPACK raises — or, with ``finite_fallback``, when
    the solve produced non-finite weights from a numerically degenerate
    system; either way the minimum-norm least-squares solution on the
    original design matrix is the answer OLS theory prescribes.  Ridge
    disables the non-finite rescue: ``lstsq(design, target)`` drops the
    penalty, so substituting it for a penalized solve would silently
    change the estimator.
    """
    from ..runtime.backend import active_backend

    try:
        # Backends translate their failures to LinAlgError, so the
        # fallback ladder below is engine-independent.
        weights = active_backend().solve(gram, moment)
    except np.linalg.LinAlgError:
        weights, *_ = np.linalg.lstsq(design, target, rcond=None)
        return weights
    if finite_fallback and not np.all(np.isfinite(weights)):
        weights, *_ = np.linalg.lstsq(design, target, rcond=None)
    return weights


def _validate_xy(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if X.ndim != 2:
        raise DataError(f"X must be 2-d, got ndim={X.ndim}")
    if X.shape[0] != y.shape[0]:
        raise DataError(
            f"X has {X.shape[0]} rows but y has {y.shape[0]} entries"
        )
    if X.shape[0] == 0:
        raise DataError("cannot fit on an empty dataset")
    if not (np.all(np.isfinite(X)) and np.all(np.isfinite(y))):
        raise DataError("X and y must be finite")
    return X, y


def _validate_weights(sample_weight: np.ndarray | None, n: int) -> np.ndarray | None:
    """Check a sample-weight vector: non-negative, finite, positive mass."""
    if sample_weight is None:
        return None
    w = np.asarray(sample_weight, dtype=float).ravel()
    if w.shape[0] != n:
        raise DataError(f"sample_weight has length {w.shape[0]}, expected {n}")
    if not np.all(np.isfinite(w)) or np.any(w < 0):
        raise DataError("sample_weight must be finite and non-negative")
    if float(w.sum()) <= 0.0:
        raise DataError("sample_weight must have positive total mass")
    return w


@dataclass
class LinearRegression:
    """Ordinary least squares, ``w* = argmin sum_i (y_i - x_i^T w)^2``.

    Attributes
    ----------
    coef_:
        Fitted weight vector (length ``d``), available after :meth:`fit`.
    intercept_:
        Fitted intercept (0.0 when ``fit_intercept=False``).

    Examples
    --------
    >>> X = np.array([[0.0], [1.0], [2.0]])
    >>> model = LinearRegression().fit(X, np.array([0.0, 2.0, 4.0]))
    >>> bool(np.allclose(model.predict(np.array([[3.0]])), [6.0]))
    True
    """

    fit_intercept: bool = False
    coef_: Optional[np.ndarray] = field(default=None, init=False)
    intercept_: float = field(default=0.0, init=False)

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "LinearRegression":
        """Fit by normal equations (SVD fallback on singular Gram matrices).

        ``sample_weight`` fits weighted least squares — used by the
        histogram baselines, which regress on cell centers weighted by
        noisy counts instead of materializing replicated synthetic rows.
        """
        X, y = _validate_xy(X, y)
        w = _validate_weights(sample_weight, X.shape[0])
        design = self._design(X)
        if w is not None:
            root = np.sqrt(w)
            design = design * root[:, None]
            y = y * root
        gram = design.T @ design
        moment = design.T @ y
        self._unpack(_solve_normal_equations(gram, moment, design, y))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for ``X``."""
        if self.coef_ is None:
            raise NotFittedError(type(self).__name__)
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.coef_.shape[0]:
            raise DataError(
                f"X must be 2-d with {self.coef_.shape[0]} columns, got shape {X.shape}"
            )
        return X @ self.coef_ + self.intercept_

    def score_mse(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean square error on ``(X, y)`` — the paper's accuracy measure."""
        return mean_squared_error(y, self.predict(X))

    def _design(self, X: np.ndarray) -> np.ndarray:
        if self.fit_intercept:
            return np.hstack([X, np.ones((X.shape[0], 1))])
        return X

    def _unpack(self, weights: np.ndarray) -> None:
        if self.fit_intercept:
            self.coef_ = weights[:-1]
            self.intercept_ = float(weights[-1])
        else:
            self.coef_ = weights
            self.intercept_ = 0.0


@dataclass
class RidgeRegression(LinearRegression):
    """L2-regularized least squares, ``argmin ||y - Xw||^2 + lam ||w||^2``.

    ``lam`` must be non-negative; ``lam = 0`` recovers OLS exactly.  The
    intercept column, when present, is *not* penalized (standard practice:
    shrinking the intercept has no regularizing interpretation).
    """

    lam: float = 1.0

    def __post_init__(self) -> None:
        if self.lam < 0.0 or not np.isfinite(self.lam):
            raise ValueError(f"lam must be non-negative and finite, got {self.lam!r}")

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "RidgeRegression":
        X, y = _validate_xy(X, y)
        w = _validate_weights(sample_weight, X.shape[0])
        design = self._design(X)
        if w is not None:
            root = np.sqrt(w)
            design = design * root[:, None]
            y = y * root
        p = design.shape[1]
        penalty = self.lam * np.eye(p)
        if self.fit_intercept:
            penalty[-1, -1] = 0.0  # do not shrink the intercept
        gram = design.T @ design + penalty
        moment = design.T @ y
        self._unpack(
            _solve_normal_equations(gram, moment, design, y, finite_fallback=False)
        )
        return self
