"""Convex optimization solvers used by the regression engines.

The paper's evaluation contrasts two computational regimes:

* FM solves a *quadratic* program — closed form, one linear solve; this is
  why Figures 7–9 show FM at least an order of magnitude faster than the
  iterative alternatives.
* NoPrivacy / Truncated / synthetic-data baselines minimize the original
  (logistic) loss — iterative Newton or gradient descent over all tuples.

Everything here is implemented from scratch on numpy so the reproduction does
not depend on an external ML stack: damped Newton with backtracking line
search, gradient descent with Armijo line search, and the closed-form
quadratic solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.polynomial import QuadraticForm
from ..exceptions import ConvergenceError, SolverError

__all__ = [
    "SolverResult",
    "solve_quadratic",
    "GradientDescent",
    "NewtonSolver",
]

Objective = Callable[[np.ndarray], float]
Gradient = Callable[[np.ndarray], np.ndarray]
Hessian = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class SolverResult:
    """Outcome of an optimization run.

    Attributes
    ----------
    x:
        The minimizer found.
    fun:
        Objective value at ``x``.
    iterations:
        Iterations consumed (0 for closed-form solves).
    converged:
        Whether the stopping criterion was met within the iteration budget.
    gradient_norm:
        Max-norm of the gradient at ``x`` (0.0 when not applicable).
    """

    x: np.ndarray
    fun: float
    iterations: int
    converged: bool
    gradient_norm: float


def solve_quadratic(form: QuadraticForm) -> SolverResult:
    """Minimize a positive-definite quadratic form in closed form.

    Thin wrapper over :meth:`QuadraticForm.minimize` that returns the common
    :class:`SolverResult` shape (and therefore participates in the timing
    harness identically to the iterative solvers).
    """
    x = form.minimize()
    return SolverResult(
        x=x,
        fun=form.evaluate(x),
        iterations=0,
        converged=True,
        gradient_norm=float(np.abs(form.gradient(x)).max()),
    )


def _backtracking_step(
    objective: Objective,
    x: np.ndarray,
    fx: float,
    direction: np.ndarray,
    directional_derivative: float,
    initial_step: float = 1.0,
    shrink: float = 0.5,
    armijo: float = 1e-4,
    max_backtracks: int = 60,
) -> tuple[np.ndarray, float, float] | None:
    """Armijo backtracking line search along ``direction``.

    Returns ``(new_x, new_fx, step)`` or ``None`` if no acceptable step was
    found (direction is not a descent direction at working precision).
    """
    step = initial_step
    for _ in range(max_backtracks):
        candidate = x + step * direction
        f_candidate = objective(candidate)
        if np.isfinite(f_candidate) and f_candidate <= fx + armijo * step * directional_derivative:
            return candidate, f_candidate, step
        step *= shrink
    return None


@dataclass
class GradientDescent:
    """Gradient descent with Armijo backtracking line search.

    Parameters
    ----------
    max_iterations:
        Iteration budget.
    tolerance:
        Stop when the gradient max-norm drops below this.
    raise_on_failure:
        When True, a run that exhausts the budget raises
        :class:`~repro.exceptions.ConvergenceError`; otherwise the best
        iterate is returned with ``converged=False``.
    """

    max_iterations: int = 2000
    tolerance: float = 1e-8
    raise_on_failure: bool = False

    def minimize(
        self,
        objective: Objective,
        gradient: Gradient,
        x0: np.ndarray,
    ) -> SolverResult:
        """Minimize ``objective`` starting from ``x0``."""
        x = np.asarray(x0, dtype=float).copy()
        fx = float(objective(x))
        if not np.isfinite(fx):
            raise SolverError(f"objective is not finite at the starting point: {fx!r}")
        iterations = 0
        grad_norm = np.inf
        for iterations in range(1, self.max_iterations + 1):
            grad = gradient(x)
            grad_norm = float(np.abs(grad).max())
            if grad_norm <= self.tolerance:
                return SolverResult(x, fx, iterations - 1, True, grad_norm)
            direction = -grad
            dd = float(grad @ direction)
            outcome = _backtracking_step(objective, x, fx, direction, dd)
            if outcome is None:
                # No descent possible at working precision: treat as converged
                # if the gradient is already small-ish, else report failure.
                if grad_norm <= 1e3 * self.tolerance:
                    return SolverResult(x, fx, iterations, True, grad_norm)
                break
            x, fx, _ = outcome
        if self.raise_on_failure:
            raise ConvergenceError("GradientDescent", iterations, grad_norm)
        return SolverResult(x, fx, iterations, False, grad_norm)


@dataclass
class NewtonSolver:
    """Damped Newton's method with line search and gradient-descent fallback.

    At each iterate the Newton system ``H p = -g`` is solved; if ``H`` is
    singular or the step is not a descent direction, a small multiple of the
    identity is added (Levenberg-style) before falling back to the steepest
    descent direction.  Backtracking guarantees monotone objective decrease,
    so the solver is robust on the logistic loss whose Hessian can become
    near-singular for separable data.
    """

    max_iterations: int = 100
    tolerance: float = 1e-10
    damping: float = 1e-10
    raise_on_failure: bool = False

    def minimize(
        self,
        objective: Objective,
        gradient: Gradient,
        hessian: Hessian,
        x0: np.ndarray,
    ) -> SolverResult:
        """Minimize ``objective`` starting from ``x0``."""
        x = np.asarray(x0, dtype=float).copy()
        fx = float(objective(x))
        if not np.isfinite(fx):
            raise SolverError(f"objective is not finite at the starting point: {fx!r}")
        d = x.shape[0]
        identity = np.eye(d)
        iterations = 0
        grad_norm = np.inf
        for iterations in range(1, self.max_iterations + 1):
            grad = gradient(x)
            grad_norm = float(np.abs(grad).max())
            if grad_norm <= self.tolerance:
                return SolverResult(x, fx, iterations - 1, True, grad_norm)
            hess = hessian(x)
            direction = self._newton_direction(hess, grad, identity)
            dd = float(grad @ direction)
            if dd >= 0.0:  # not a descent direction; steepest descent instead
                direction = -grad
                dd = float(grad @ direction)
            outcome = _backtracking_step(objective, x, fx, direction, dd)
            if outcome is None:
                if grad_norm <= 1e3 * self.tolerance:
                    return SolverResult(x, fx, iterations, True, grad_norm)
                break
            x, fx, _ = outcome
        if self.raise_on_failure:
            raise ConvergenceError("NewtonSolver", iterations, grad_norm)
        return SolverResult(x, fx, iterations, False, grad_norm)

    def _newton_direction(
        self, hess: np.ndarray, grad: np.ndarray, identity: np.ndarray
    ) -> np.ndarray:
        from ..runtime.backend import active_backend

        damping = self.damping
        for _ in range(8):
            try:
                return active_backend().solve(hess + damping * identity, -grad)
            except np.linalg.LinAlgError:
                damping = max(damping * 100.0, 1e-8)
        return -grad
