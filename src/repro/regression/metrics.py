"""Evaluation metrics used in the paper's Section 7.

The paper measures

* **linear regression** by mean square error of the predictions on the
  normalized target, ``(1/n) sum_i (y_i - x_i^T w)^2``, and
* **logistic regression** by the misclassification rate under the 0.5
  probability threshold.

A few additional standard metrics (R^2, log-loss, MAE) are included for the
examples and for richer test assertions; they are not part of the paper's
reporting.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mean_squared_error",
    "root_mean_squared_error",
    "mean_absolute_error",
    "r2_score",
    "misclassification_rate",
    "accuracy",
    "log_loss",
]


def _check_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true and y_pred must have the same length, got "
            f"{y_true.shape[0]} and {y_pred.shape[0]}"
        )
    if y_true.size == 0:
        raise ValueError("metrics require at least one sample")
    return y_true, y_pred


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean square error — the paper's linear-regression accuracy measure."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def root_mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Square root of :func:`mean_squared_error`."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination.

    Returns 0.0 for a constant ``y_true`` with perfect predictions and
    ``-inf``-free values otherwise (a constant target with imperfect
    predictions yields a large negative score capped at ``-1e18`` to keep
    downstream aggregation finite).
    """
    y_true, y_pred = _check_pair(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 0.0 if ss_res == 0.0 else -1e18
    return 1.0 - ss_res / ss_tot


def misclassification_rate(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of incorrectly classified labels — the paper's logistic metric.

    Inputs are coerced to {0, 1} by thresholding at 0.5, so both hard labels
    and probability predictions are accepted.
    """
    y_true, y_pred = _check_pair(y_true, y_pred)
    labels_true = (y_true >= 0.5).astype(int)
    labels_pred = (y_pred >= 0.5).astype(int)
    return float(np.mean(labels_true != labels_pred))


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """``1 - misclassification_rate``."""
    return 1.0 - misclassification_rate(y_true, y_pred)


def log_loss(y_true: np.ndarray, probabilities: np.ndarray, eps: float = 1e-12) -> float:
    """Average negative log-likelihood of binary labels under ``probabilities``."""
    y_true, probabilities = _check_pair(y_true, probabilities)
    if np.any((probabilities < 0.0) | (probabilities > 1.0)):
        raise ValueError("probabilities must lie in [0, 1]")
    p = np.clip(probabilities, eps, 1.0 - eps)
    return float(-np.mean(y_true * np.log(p) + (1.0 - y_true) * np.log(1.0 - p)))
