"""Norm-preserving polynomial feature expansion.

The Functional Mechanism's sensitivity bounds require ``||x||_2 <= 1``.
That constraint composes with feature maps: if ``phi`` maps the unit ball
into the unit ball, FM on ``phi(x)`` is differentially private with the
*same* formulas at the expanded dimensionality — which turns the paper's
linear/logistic case studies into private *polynomial* regression for free.

:class:`PolynomialFeatureMap` implements the degree-2 expansion

    phi(x) = ( x,  v(x) ) / sqrt(2),
    v(x)   = ( x_1^2, ..., x_d^2, sqrt(2) x_i x_j for i < j ),

where ``v`` is the Frobenius flattening of ``x x^T`` — so ``||v(x)||_2 =
||x||_2^2`` and ``||phi(x)||_2^2 = (||x||^2 + ||x||^4)/2 <= 1`` whenever
``||x|| <= 1``.  The expanded dimensionality is ``d + d(d+1)/2``; the FM
noise grows accordingly (quadratically in the expanded ``d``), which is the
honest cost of fitting curvature privately.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError

__all__ = ["PolynomialFeatureMap"]


@dataclass(frozen=True)
class PolynomialFeatureMap:
    """Degree-2 feature expansion that maps the unit ball into itself.

    Parameters
    ----------
    input_dim:
        Dimensionality ``d`` of the raw feature space.
    include_linear:
        Keep the raw coordinates alongside the quadratic terms (default
        True; False gives a purely quadratic map, scaled so the unit-ball
        guarantee still holds).

    Examples
    --------
    >>> import numpy as np
    >>> phi = PolynomialFeatureMap(input_dim=2)
    >>> phi.output_dim
    5
    >>> X = np.array([[0.6, 0.8]])              # ||x|| = 1
    >>> float(np.linalg.norm(phi.transform(X)))  # stays inside the ball
    1.0
    """

    input_dim: int
    include_linear: bool = True

    def __post_init__(self) -> None:
        if int(self.input_dim) < 1:
            raise DataError(f"input_dim must be >= 1, got {self.input_dim}")
        object.__setattr__(self, "input_dim", int(self.input_dim))

    @property
    def output_dim(self) -> int:
        """Expanded dimensionality ``d + d(d+1)/2`` (or just the quadratic part)."""
        d = self.input_dim
        quadratic = d * (d + 1) // 2
        return d + quadratic if self.include_linear else quadratic

    def feature_names(self, names: list[str] | None = None) -> list[str]:
        """Human-readable names of the expanded columns."""
        d = self.input_dim
        base = names if names is not None else [f"x{j + 1}" for j in range(d)]
        if len(base) != d:
            raise DataError(f"expected {d} names, got {len(base)}")
        out = list(base) if self.include_linear else []
        for i in range(d):
            for j in range(i, d):
                out.append(f"{base[i]}^2" if i == j else f"{base[i]}*{base[j]}")
        return out

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Expand ``X``; rows with ``||x|| <= 1`` map to ``||phi(x)|| <= 1``."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.input_dim:
            raise DataError(
                f"X must be 2-d with {self.input_dim} columns, got shape {X.shape}"
            )
        n, d = X.shape
        blocks = []
        if self.include_linear:
            blocks.append(X)
        quadratic = np.empty((n, d * (d + 1) // 2))
        col = 0
        for i in range(d):
            quadratic[:, col] = X[:, i] ** 2
            col += 1
            for j in range(i + 1, d):
                quadratic[:, col] = math.sqrt(2.0) * X[:, i] * X[:, j]
                col += 1
        blocks.append(quadratic)
        expanded = np.hstack(blocks)
        # ||(x, v)||^2 = ||x||^2 + ||x||^4 <= 2 on the unit ball; the pure
        # quadratic map is already bounded by 1.
        scale = math.sqrt(2.0) if self.include_linear else 1.0
        return expanded / scale
