"""Synthetic IPUMS-like census microdata (US and Brazil).

The paper evaluates on two IPUMS extracts: **US** (370,000 records) and
**Brazil** (190,000 records), 13 attributes each.  IPUMS microdata cannot be
redistributed, so this module substitutes a seeded generative model that
preserves what the evaluation actually exercises:

* the exact attribute schema and domains (:mod:`repro.data.schema`),
* realistic *marginals* — skewed age, bimodal working hours, discrete
  family structure, heavy-tailed income concentrated well below its cap,
* realistic *cross-correlations* — income driven by education, hours, an
  age hump, gender and disability gaps; ownership and automobiles driven by
  income and age; children tied to marital status,
* a linear/logistic signal of moderate strength, so the private algorithms'
  error curves have the paper's dynamic range (NoPrivacy misclassification
  around 30% for US and high-teens for Brazil, matching Figure 4c-d's
  floors).

These properties — not the actual census values — are what determine the
relative behaviour of FM vs DPME/FP: histogram baselines suffer exactly when
marginals are skewed and attributes are binary/discrete (coarse cells
misplace the mass), while FM's noise depends only on ``d`` and ``epsilon``.
DESIGN.md documents this substitution argument.

Everything is vectorized numpy; generating the full 370k-row US table takes
well under a second.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..exceptions import DataError
from ..privacy.rng import RngLike, ensure_rng
from .datasets import CensusDataset
from .schema import CENSUS_ATTRIBUTES, INCOME_CAP

__all__ = [
    "US_DEFAULT_SIZE",
    "BRAZIL_DEFAULT_SIZE",
    "generate_census",
    "load_us",
    "load_brazil",
]

#: Cardinalities of the paper's datasets.
US_DEFAULT_SIZE = 370_000
BRAZIL_DEFAULT_SIZE = 190_000

Country = Literal["us", "brazil"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


def _country_params(country: Country) -> dict:
    """Generator parameters per country.

    The two parameter sets differ where the paper's figures differ:
    Brazil's income signal is more separable (lower logistic error floor),
    its income distribution is more skewed (higher scaled linear MSE), and
    its demographics are younger with lower average education.
    """
    if country == "us":
        return {
            "age_beta": (2.1, 2.9),
            # Probabilities over milestone years (6, 9, 11, 12, 14, 16, 18).
            "education_milestone_probs": [0.04, 0.06, 0.08, 0.36, 0.18, 0.20, 0.08],
            "nativity_rate": 0.86,
            "employment_logit": 2.3,
            "standard_week_rate": 0.52,
            "hours_mean": 38.0,
            "hours_sd": 13.0,
            "income_cap": INCOME_CAP["us"],
            # income = cap * clip(base + signal + noise + tail, 0, 1).
            # Coefficients are small fractions of the cap: census income is
            # heavily concentrated near the bottom of its declared domain
            # (median personal income is well under a tenth of the cap),
            # which is what starves coarse-histogram baselines of signal.
            "income_base": 0.004,
            "income_coeffs": {
                "education": 0.110,
                "hours": 0.035,
                "age_hump": 0.025,
                "gender": 0.010,
                "nativity": 0.006,
                "disability": -0.009,
                "married": 0.005,
            },
            # Heavy additive noise keeps the US logistic floor ~30%.
            "income_noise_sd": 0.010,
            "income_tail_sd": 1.1,
            "income_tail_weight": 0.035,
        }
    if country == "brazil":
        return {
            "age_beta": (1.8, 3.3),
            "education_milestone_probs": [0.22, 0.16, 0.14, 0.24, 0.10, 0.10, 0.04],
            "nativity_rate": 0.96,
            "employment_logit": 2.0,
            "standard_week_rate": 0.44,
            "hours_mean": 40.0,
            "hours_sd": 14.0,
            "income_cap": INCOME_CAP["brazil"],
            "income_base": 0.003,
            "income_coeffs": {
                "education": 0.135,
                "hours": 0.026,
                "age_hump": 0.014,
                "gender": 0.008,
                "nativity": 0.004,
                "disability": -0.008,
                "married": 0.004,
            },
            # Stronger signal-to-noise: Brazil's logistic floor is lower.
            "income_noise_sd": 0.006,
            "income_tail_sd": 1.1,
            "income_tail_weight": 0.012,
        }
    raise DataError(f"country must be 'us' or 'brazil', got {country!r}")


def generate_census(
    country: Country,
    n: int,
    rng: RngLike = None,
) -> CensusDataset:
    """Generate ``n`` census records for ``country``.

    Returns a :class:`~repro.data.datasets.CensusDataset` whose feature
    columns follow :data:`~repro.data.schema.CENSUS_ATTRIBUTES` order with
    Annual Income as the target column.
    """
    n = int(n)
    if n < 1:
        raise DataError(f"n must be >= 1, got {n}")
    params = _country_params(country)
    gen = ensure_rng(rng)

    # --- demographics -------------------------------------------------
    a, b = params["age_beta"]
    age = 16.0 + 79.0 * gen.beta(a, b, size=n)
    gender = (gen.uniform(size=n) < 0.515).astype(float)  # 1 = male

    # Marital status: single probability falls with age, divorced/widowed
    # rises late; the remainder are married.  Expanded directly into the
    # two binaries the paper uses.
    p_single = np.clip(1.35 - 0.028 * age, 0.03, 0.97)
    p_divwid = np.clip(0.004 * np.maximum(age - 40.0, 0.0), 0.0, 0.45)
    u = gen.uniform(size=n)
    is_single = (u < p_single).astype(float)
    is_divwid = ((u >= p_single) & (u < p_single + p_divwid)).astype(float)
    is_married = 1.0 - is_single - is_divwid

    # Education: integer years with the spiky distribution census data shows
    # (large spikes at the high-school and college milestones, 12 and 16
    # years), shifted by a cohort effect.  The concentration matters for the
    # histogram baselines: a 2-bin split of [0, 18] puts nearly all mass in
    # one bin, which is exactly the granularity collapse the paper describes.
    cohort = np.clip((45.0 - age) / 45.0, -0.7, 0.65)
    edu_milestones = np.array([6.0, 9.0, 11.0, 12.0, 14.0, 16.0, 18.0])
    milestone_probs = params["education_milestone_probs"]
    education = edu_milestones[
        gen.choice(len(edu_milestones), size=n, p=milestone_probs)
    ]
    education = np.clip(
        np.round(education + 2.2 * cohort + gen.normal(0.0, 0.8, n)), 0.0, 18.0
    )

    disability = (gen.uniform(size=n) < _sigmoid(-4.4 + 0.05 * age)).astype(float)
    nativity = (gen.uniform(size=n) < params["nativity_rate"]).astype(float)

    # Working hours: employment propensity falls past ~58 and with
    # disability; hours for the employed cluster near full time.
    p_employed = _sigmoid(
        params["employment_logit"]
        - 0.085 * np.maximum(age - 58.0, 0.0)
        - 1.6 * disability
        + 0.25 * gender
    )
    employed = (gen.uniform(size=n) < p_employed).astype(float)
    # Hours spike hard at the standard full-time week — census microdata has
    # roughly half of all workers reporting exactly 40 hours.
    standard_week = gen.uniform(size=n) < params["standard_week_rate"]
    irregular = np.clip(gen.normal(params["hours_mean"], params["hours_sd"], n), 1.0, 99.0)
    hours = employed * np.round(np.where(standard_week, 40.0, irregular))

    # Residency is zero-inflated (recent movers) with a long settled tail.
    mover = gen.uniform(size=n) < 0.28
    settled = gen.uniform(size=n) ** 1.6 * np.maximum(age - 15.0, 0.0)
    years_residing = np.round(
        np.clip(np.where(mover, gen.uniform(0.0, 2.0, n), settled), 0.0, 60.0)
    )

    family_size = np.clip(
        1.0 + gen.poisson(1.1 + 1.1 * is_married, size=n), 1.0, 15.0
    )
    fertile = np.maximum(family_size - 1.0, 0.0)
    children = np.clip(
        gen.binomial(fertile.astype(int), np.clip(0.25 + 0.35 * is_married, 0.0, 0.9)),
        0.0,
        10.0,
    ).astype(float)

    # --- income -------------------------------------------------------
    c = params["income_coeffs"]
    age_hump = 1.0 - ((age - 48.0) / 32.0) ** 2  # inverted U, peak at 48
    signal = (
        params["income_base"]
        + c["education"] * education / 18.0
        + c["hours"] * hours / 60.0
        + c["age_hump"] * np.clip(age_hump, -1.0, 1.0)
        + c["gender"] * gender
        + c["nativity"] * nativity
        + c["disability"] * disability
        + c["married"] * is_married
    )
    noise = gen.normal(0.0, params["income_noise_sd"], n)
    # Heavy right tail: a lognormal bump that a minority of records receive.
    tail = params["income_tail_weight"] * (
        np.exp(gen.normal(0.0, params["income_tail_sd"], n)) - 1.0
    )
    income_fraction = np.clip(signal + noise + tail, 0.0, 1.0)
    income = income_fraction * params["income_cap"]

    # --- wealth proxies (functions of income and demographics) ---------
    ownership = (
        gen.uniform(size=n)
        < _sigmoid(-2.6 + 0.035 * age + 3.0 * income_fraction + 0.7 * is_married)
    ).astype(float)
    automobiles = np.clip(
        np.round(
            0.2
            + 3.2 * income_fraction
            + 0.35 * (family_size > 2.0)
            + gen.normal(0.0, 0.6, n)
        ),
        0.0,
        6.0,
    )

    columns = {
        "Age": age,
        "Gender": gender,
        "Is Single": is_single,
        "Is Married": is_married,
        "Education": education,
        "Disability": disability,
        "Nativity": nativity,
        "Working Hours per Week": hours,
        "Years Residing": years_residing,
        "Ownership of Dwelling": ownership,
        "Family Size": family_size,
        "Number of Children": children,
        "Number of Automobiles": automobiles,
    }
    features = np.column_stack([columns[spec.name] for spec in CENSUS_ATTRIBUTES])
    return CensusDataset(country=country, features=features, income=income)


def load_us(n: int | None = None, rng: RngLike = 20120827) -> CensusDataset:
    """The US census substitute (370,000 records by default).

    The default seed is fixed so that every caller sees the *same* "US
    dataset", mirroring how the paper's authors all read one file.  Pass a
    different seed only when you deliberately want a different population.
    """
    return generate_census("us", US_DEFAULT_SIZE if n is None else n, rng=rng)


def load_brazil(n: int | None = None, rng: RngLike = 20120831) -> CensusDataset:
    """The Brazil census substitute (190,000 records by default)."""
    return generate_census("brazil", BRAZIL_DEFAULT_SIZE if n is None else n, rng=rng)
