"""Dataset container and task preparation.

:class:`CensusDataset` carries the raw census table (feature columns in
schema order plus Annual Income) and turns it into normalized regression
tasks:

* :meth:`CensusDataset.regression_task` applies the paper's full pipeline —
  attribute subset for the requested Table-2 dimensionality, footnote-1
  feature scaling from *declared* domains, and target preparation
  (``[-1, 1]`` scaling for linear, threshold binarization for logistic);
* :meth:`CensusDataset.sample` implements the Table-2 sampling-rate sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..exceptions import DataError
from ..privacy.rng import RngLike, ensure_rng
from ..regression.preprocessing import FeatureScaler, TargetScaler, binarize_labels
from .schema import (
    CENSUS_ATTRIBUTES,
    INCOME_CAP,
    INCOME_THRESHOLD,
    subset_for_dims,
)

__all__ = ["RegressionTask", "CensusDataset"]


@dataclass(frozen=True)
class RegressionTask:
    """A ready-to-fit task: normalized features, prepared target, metadata.

    ``X`` rows satisfy ``||x||_2 <= 1``; ``y`` lies in ``[-1, 1]`` (linear)
    or ``{0, 1}`` (logistic).  ``feature_names`` records which attributes
    (in order) the columns correspond to.
    """

    X: np.ndarray
    y: np.ndarray
    task: Literal["linear", "logistic"]
    country: str
    feature_names: tuple[str, ...]

    def __post_init__(self) -> None:
        # Canonicalize once at construction: downstream layers (plan
        # boundary, kernels) require C-contiguous float64 and would
        # otherwise copy per repetition, defeating prepared-array sharing.
        object.__setattr__(self, "X", np.ascontiguousarray(self.X, dtype=np.float64))
        object.__setattr__(self, "y", np.ascontiguousarray(self.y, dtype=np.float64))

    @property
    def n(self) -> int:
        """Number of records."""
        return self.X.shape[0]

    @property
    def dim(self) -> int:
        """Number of features ``d`` (= paper dimensionality - 1)."""
        return self.X.shape[1]


class CensusDataset:
    """A census table: 13 feature columns (schema order) + Annual Income.

    Instances are produced by :mod:`repro.data.census`; tests may construct
    them directly from arrays.
    """

    def __init__(self, country: str, features: np.ndarray, income: np.ndarray) -> None:
        features = np.asarray(features, dtype=float)
        income = np.asarray(income, dtype=float).ravel()
        if features.ndim != 2 or features.shape[1] != len(CENSUS_ATTRIBUTES):
            raise DataError(
                f"features must have {len(CENSUS_ATTRIBUTES)} columns, "
                f"got shape {features.shape}"
            )
        if features.shape[0] != income.shape[0]:
            raise DataError("features and income must have the same length")
        country = country.lower()
        if country not in INCOME_CAP:
            raise DataError(f"country must be one of {sorted(INCOME_CAP)}, got {country!r}")
        self.country = country
        self.features = features
        self.income = income
        self._column_of = {spec.name: i for i, spec in enumerate(CENSUS_ATTRIBUTES)}

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of records."""
        return self.features.shape[0]

    def __repr__(self) -> str:
        return f"CensusDataset(country={self.country!r}, n={self.n})"

    def column(self, name: str) -> np.ndarray:
        """One raw feature column by attribute name."""
        try:
            return self.features[:, self._column_of[name]]
        except KeyError:
            raise DataError(f"unknown attribute {name!r}") from None

    # ------------------------------------------------------------------
    def sample(self, rate: float, rng: RngLike = None) -> "CensusDataset":
        """Random subset at the Table-2 sampling rate (without replacement)."""
        rate = float(rate)
        if not 0.0 < rate <= 1.0:
            raise DataError(f"sampling rate must be in (0, 1], got {rate!r}")
        if rate == 1.0:
            return self
        gen = ensure_rng(rng)
        size = max(1, int(round(self.n * rate)))
        index = gen.choice(self.n, size=size, replace=False)
        return CensusDataset(
            country=self.country,
            features=self.features[index],
            income=self.income[index],
        )

    def take(self, index: np.ndarray) -> "CensusDataset":
        """Subset by explicit row indices (used by cross-validation)."""
        index = np.asarray(index, dtype=int)
        return CensusDataset(
            country=self.country,
            features=self.features[index],
            income=self.income[index],
        )

    # ------------------------------------------------------------------
    def regression_task(
        self,
        task: Literal["linear", "logistic"],
        dims: int = 14,
    ) -> RegressionTask:
        """Prepare a normalized task at a Table-2 dimensionality.

        Scaling uses the schema's declared attribute domains and the
        country's declared income cap/threshold — never the realized data —
        so preparing a task consumes no privacy budget.
        """
        names = subset_for_dims(dims)
        indices = [self._column_of[name] for name in names]
        specs = [CENSUS_ATTRIBUTES[i] for i in indices]
        scaler = FeatureScaler(
            lower=np.array([s.lower for s in specs]),
            upper=np.array([s.upper for s in specs]),
        )
        X = scaler.transform(self.features[:, indices])
        if task == "linear":
            y = TargetScaler(lower=0.0, upper=INCOME_CAP[self.country]).transform(self.income)
        elif task == "logistic":
            y = binarize_labels(self.income, INCOME_THRESHOLD[self.country])
        else:
            raise DataError(f"task must be 'linear' or 'logistic', got {task!r}")
        return RegressionTask(
            X=X, y=y, task=task, country=self.country, feature_names=tuple(names)
        )
