"""Census data substrate: schema, synthetic IPUMS-like generators, transforms.

The paper's IPUMS US/Brazil extracts are substituted by seeded generative
models with matched schema, domains, marginals and cross-correlations (see
DESIGN.md for the substitution argument).
"""

from .census import (
    BRAZIL_DEFAULT_SIZE,
    US_DEFAULT_SIZE,
    generate_census,
    load_brazil,
    load_us,
)
from .datasets import CensusDataset, RegressionTask
from .schema import (
    CENSUS_ATTRIBUTES,
    INCOME_CAP,
    INCOME_THRESHOLD,
    SUBSET_BY_DIMENSIONALITY,
    AttributeSpec,
    feature_names,
    subset_for_dims,
)
from .transforms import (
    census_feature_scaler,
    expand_marital_status,
    prepare_linear_target,
    prepare_logistic_target,
)
from .uci_like import ADULT_ATTRIBUTES, AdultLikeDataset, load_adult_like

__all__ = [
    "BRAZIL_DEFAULT_SIZE",
    "US_DEFAULT_SIZE",
    "generate_census",
    "load_brazil",
    "load_us",
    "CensusDataset",
    "RegressionTask",
    "CENSUS_ATTRIBUTES",
    "INCOME_CAP",
    "INCOME_THRESHOLD",
    "SUBSET_BY_DIMENSIONALITY",
    "AttributeSpec",
    "feature_names",
    "subset_for_dims",
    "census_feature_scaler",
    "expand_marital_status",
    "prepare_linear_target",
    "prepare_logistic_target",
    "ADULT_ATTRIBUTES",
    "AdultLikeDataset",
    "load_adult_like",
]
