"""A UCI-Adult-like benchmark dataset.

Follow-on work on the Functional Mechanism evaluates on the UCI *Adult*
extract ("census income": predict whether income exceeds $50K).  The UCI
file cannot be bundled here, so this module provides a seeded synthetic
stand-in with the same shape: six numeric/binary attributes, a binary
``>50K`` label with the canonical ~24% positive rate, and the same
preparation contract as the main census substrate (declared domains,
footnote-1 scaling).

It serves as a second, independent domain for examples and tests — small
enough (default 30,162 rows, the UCI train-split size after dropping
missing values) to keep any demo instant.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError
from ..privacy.rng import RngLike, ensure_rng
from ..regression.preprocessing import FeatureScaler

__all__ = ["ADULT_ATTRIBUTES", "AdultLikeDataset", "load_adult_like"]

#: (name, lower, upper) for the six predictors, in column order.
ADULT_ATTRIBUTES: tuple[tuple[str, float, float], ...] = (
    ("age", 17.0, 90.0),
    ("education-num", 1.0, 16.0),
    ("hours-per-week", 1.0, 99.0),
    ("capital-gain", 0.0, 99_999.0),
    ("sex", 0.0, 1.0),
    ("married", 0.0, 1.0),
)

_DEFAULT_SIZE = 30_162  # UCI Adult train split after removing missing rows


class AdultLikeDataset:
    """Synthetic Adult-like table with a prepared binary task."""

    def __init__(self, features: np.ndarray, label: np.ndarray) -> None:
        features = np.asarray(features, dtype=float)
        label = np.asarray(label, dtype=float).ravel()
        if features.ndim != 2 or features.shape[1] != len(ADULT_ATTRIBUTES):
            raise DataError(
                f"features must have {len(ADULT_ATTRIBUTES)} columns, "
                f"got shape {features.shape}"
            )
        if features.shape[0] != label.shape[0]:
            raise DataError("features and label must have the same length")
        self.features = features
        self.label = label

    @property
    def n(self) -> int:
        """Number of records."""
        return self.features.shape[0]

    def logistic_task(self) -> tuple[np.ndarray, np.ndarray]:
        """Footnote-1 normalized ``(X, y)`` for the >50K classification."""
        scaler = FeatureScaler(
            lower=np.array([a[1] for a in ADULT_ATTRIBUTES]),
            upper=np.array([a[2] for a in ADULT_ATTRIBUTES]),
        )
        return scaler.transform(self.features), self.label


def load_adult_like(n: int | None = None, rng: RngLike = 19960501) -> AdultLikeDataset:
    """Generate the Adult-like dataset (default: the UCI train-split size).

    The default seed is fixed so every caller reads "the same file"; the
    generative model reproduces the headline statistics of the real
    extract: ~24% positive rate, income driven by education, hours, age and
    marriage, a zero-inflated heavy-tailed capital-gain column.
    """
    size = _DEFAULT_SIZE if n is None else int(n)
    if size < 1:
        raise DataError(f"n must be >= 1, got {size}")
    gen = ensure_rng(rng)

    age = np.round(np.clip(17.0 + 73.0 * gen.beta(2.0, 3.5, size), 17, 90))
    education = np.clip(np.round(gen.normal(10.1, 2.6, size)), 1, 16)
    sex = (gen.uniform(size=size) < 0.67).astype(float)  # UCI is ~2/3 male
    married = (
        gen.uniform(size=size) < np.clip(0.015 * (age - 18.0), 0.0, 0.75)
    ).astype(float)
    hours = np.round(
        np.where(
            gen.uniform(size=size) < 0.45,
            40.0,
            np.clip(gen.normal(38.0, 12.0, size), 1, 99),
        )
    )
    # Capital gain: ~92% exact zeros, the rest log-normal up to the cap.
    has_gain = gen.uniform(size=size) < 0.08
    capital_gain = np.where(
        has_gain, np.clip(np.exp(gen.normal(8.0, 1.2, size)), 0, 99_999.0), 0.0
    )

    score = (
        -4.9
        + 0.50 * education
        + 0.055 * hours
        + 0.040 * (age - 17.0)
        - 0.0004 * np.maximum(age - 50.0, 0.0) ** 2
        + 0.60 * sex
        + 1.30 * married
        + 2.40 * has_gain
    )
    probability = 1.0 / (1.0 + np.exp(-(score - 6.2)))
    label = (gen.uniform(size=size) < probability).astype(float)

    features = np.column_stack([age, education, hours, capital_gain, sex, married])
    return AdultLikeDataset(features=features, label=label)
