"""Stand-alone data transforms mirroring the paper's preprocessing.

Most users go through :meth:`repro.data.datasets.CensusDataset.regression_task`,
which composes these; they are exposed separately for pipelines operating on
plain arrays (e.g. a user bringing their own table to the quickstart
example).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError
from ..regression.preprocessing import FeatureScaler, TargetScaler, binarize_labels
from .schema import CENSUS_ATTRIBUTES, subset_for_dims

__all__ = [
    "expand_marital_status",
    "census_feature_scaler",
    "prepare_linear_target",
    "prepare_logistic_target",
]


def expand_marital_status(marital: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Expand a 3-valued Marital Status column into (Is Single, Is Married).

    Follows the paper exactly: codes are 0 = Single, 1 = Married,
    2 = Divorced/Widowed; a divorced or widowed individual has 0 on both
    output columns.

    >>> single, married = expand_marital_status(np.array([0, 1, 2]))
    >>> single.tolist(), married.tolist()
    ([1.0, 0.0, 0.0], [0.0, 1.0, 0.0])
    """
    marital = np.asarray(marital)
    valid = np.isin(marital, (0, 1, 2))
    if not valid.all():
        bad = np.asarray(marital)[~valid][:3]
        raise DataError(
            f"marital status codes must be 0 (single), 1 (married) or "
            f"2 (divorced/widowed); got {bad!r}"
        )
    return (marital == 0).astype(float), (marital == 1).astype(float)


def census_feature_scaler(dims: int = 14) -> FeatureScaler:
    """The footnote-1 scaler for a Table-2 attribute subset.

    Bounds come from the declared schema domains, so the scaler is
    data-independent (safe to build before seeing any records).
    """
    names = subset_for_dims(dims)
    by_name = {spec.name: spec for spec in CENSUS_ATTRIBUTES}
    specs = [by_name[name] for name in names]
    return FeatureScaler(
        lower=np.array([s.lower for s in specs]),
        upper=np.array([s.upper for s in specs]),
    )


def prepare_linear_target(income: np.ndarray, cap: float) -> np.ndarray:
    """Scale income from ``[0, cap]`` onto ``[-1, 1]`` (Definition 1)."""
    return TargetScaler(lower=0.0, upper=float(cap)).transform(income)


def prepare_logistic_target(income: np.ndarray, threshold: float) -> np.ndarray:
    """Binarize income at a predefined threshold (Section 7's logistic task)."""
    return binarize_labels(income, threshold)
