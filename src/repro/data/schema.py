"""Attribute schema for the IPUMS-like census datasets.

Section 7 of the paper uses two IPUMS census extracts (US and Brazil) with
13 attributes; after expanding the 3-valued Marital Status into the two
binaries *Is Single* and *Is Married*, both datasets are 14-dimensional
(13 predictors + Annual Income).

This module declares that schema once: attribute names, kinds, and **domain
bounds**.  The bounds matter for privacy — footnote-1 normalization must use
declared domains, not data minima/maxima — so they live here as constants
rather than being derived at run time.

The attribute-subset definitions for the dimensionality sweep (Table 2 /
Figure 4) follow the paper's three nested subsets exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

__all__ = [
    "AttributeSpec",
    "CENSUS_ATTRIBUTES",
    "TARGET_ATTRIBUTE",
    "SUBSET_BY_DIMENSIONALITY",
    "INCOME_THRESHOLD",
    "INCOME_CAP",
    "feature_names",
    "subset_for_dims",
]

AttributeKind = Literal["binary", "ordinal", "continuous"]


@dataclass(frozen=True)
class AttributeSpec:
    """One census attribute: name, kind, and declared domain ``[lower, upper]``."""

    name: str
    kind: AttributeKind
    lower: float
    upper: float

    def __post_init__(self) -> None:
        if not self.upper > self.lower:
            raise ValueError(
                f"attribute {self.name!r}: upper ({self.upper!r}) must exceed "
                f"lower ({self.lower!r})"
            )


#: The 13 predictor attributes, in canonical column order (Marital Status
#: already expanded into the two binaries, as the paper does before any
#: experiment).
CENSUS_ATTRIBUTES: tuple[AttributeSpec, ...] = (
    AttributeSpec("Age", "continuous", 16.0, 95.0),
    AttributeSpec("Gender", "binary", 0.0, 1.0),
    AttributeSpec("Is Single", "binary", 0.0, 1.0),
    AttributeSpec("Is Married", "binary", 0.0, 1.0),
    AttributeSpec("Education", "ordinal", 0.0, 18.0),
    AttributeSpec("Disability", "binary", 0.0, 1.0),
    AttributeSpec("Nativity", "binary", 0.0, 1.0),
    AttributeSpec("Working Hours per Week", "continuous", 0.0, 99.0),
    AttributeSpec("Years Residing", "continuous", 0.0, 60.0),
    AttributeSpec("Ownership of Dwelling", "binary", 0.0, 1.0),
    AttributeSpec("Family Size", "ordinal", 1.0, 15.0),
    AttributeSpec("Number of Children", "ordinal", 0.0, 10.0),
    AttributeSpec("Number of Automobiles", "ordinal", 0.0, 6.0),
)

#: Annual Income caps per country — the declared target domain for the
#: TargetScaler ([0, cap] -> [-1, 1]).
INCOME_CAP: dict[str, float] = {"us": 300_000.0, "brazil": 120_000.0}

#: Binarization thresholds for the logistic task ("values higher than a
#: predefined threshold are mapped to 1").  Fixed constants close to the
#: generator's population median — *not* recomputed from data at run time.
INCOME_THRESHOLD: dict[str, float] = {"us": 42_000.0, "brazil": 15_000.0}

TARGET_ATTRIBUTE = "Annual Income"

#: The paper's nested attribute subsets.  Dimensionality counts attributes
#: *including* Annual Income, so ``dims = len(subset) + 1``.
SUBSET_BY_DIMENSIONALITY: dict[int, tuple[str, ...]] = {
    5: ("Age", "Gender", "Education", "Family Size"),
    8: (
        "Age",
        "Gender",
        "Education",
        "Family Size",
        "Nativity",
        "Ownership of Dwelling",
        "Number of Automobiles",
    ),
    11: (
        "Age",
        "Gender",
        "Education",
        "Family Size",
        "Nativity",
        "Ownership of Dwelling",
        "Number of Automobiles",
        "Is Single",
        "Is Married",
        "Number of Children",
    ),
    14: tuple(spec.name for spec in CENSUS_ATTRIBUTES),
}


def feature_names() -> list[str]:
    """Names of the 13 predictor columns in canonical order."""
    return [spec.name for spec in CENSUS_ATTRIBUTES]


def subset_for_dims(dims: int) -> tuple[str, ...]:
    """The paper's attribute subset for a Table-2 dimensionality value."""
    try:
        return SUBSET_BY_DIMENSIONALITY[int(dims)]
    except KeyError:
        raise ValueError(
            f"dimensionality must be one of {sorted(SUBSET_BY_DIMENSIONALITY)}, "
            f"got {dims!r}"
        ) from None
