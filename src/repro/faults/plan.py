"""Fault plans — declarative, seeded descriptions of what to break, where.

A :class:`FaultPlan` is the configuration half of the fault-injection
subsystem: a seed plus a set of :class:`FaultSpec` entries, one per
*site*.  A site is a named hook compiled into the production code path
(``worker.crash`` inside a process-pool child, ``cache.corrupt`` on an
accumulator-cache read, ...); the plan says with what probability — and
at most how many times per injection point — each site fires.  The
decision function itself lives in :class:`repro.faults.FaultInjector`
and is a pure function of ``(plan.seed, site, index, attempt)``, so a
chaos test that observed a fault once observes the identical fault
pattern on every re-run, in every process.

Plans serialize to a one-line grammar (the ``REPRO_FAULTS`` environment
variable and ``ExecutionPolicy(faults=...)`` both carry it)::

    seed=7;hang=0.2;worker.crash=0.5x2;cache.corrupt=1.0

``;`` or ``,`` separate entries.  ``seed=<int>`` keys every decision
stream; ``hang=<seconds>`` sets how long an injected ``tile.hang``
sleeps; every other entry is ``<site>=<probability>[x<max_triggers>]``
— ``x2`` means the site fires on at most the first two attempts of an
injection point and then stays quiet, which is how a test expresses
"fail twice, then succeed".

:class:`RetryPolicy` — the recovery half — rides along in this module:
the bounded exponential-backoff contract the self-healing executors run
under, built by the session from ``ExecutionPolicy`` knobs
(``max_retries``, ``tile_timeout``, ``failure_mode``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = [
    "DEFAULT_HANG_SECONDS",
    "EXECUTOR_SITES",
    "FAILURE_MODES",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
]

#: Registered injection sites -> the stable integer word keying their
#: decision substreams.  Appending new sites is safe; renumbering is not
#: (it would reshuffle every recorded fault pattern).
FAULT_SITES = {
    "worker.crash": 1,  # os._exit inside a process-pool child
    "tile.hang": 2,  # child sleeps past the tile timeout
    "payload.corrupt": 3,  # bit-flip in the pickled result envelope
    "cache.corrupt": 4,  # on-disk bit-flip of an AccumulatorCache entry
    "io.transient": 5,  # TransientIOError on a durable-state read/write
    "budget.crash": 6,  # crash between a budget journal intent and commit
}

#: Sites that execute inside process-pool workers (the self-healing
#: executors own their recovery); the rest fire in the calling process.
EXECUTOR_SITES = ("worker.crash", "tile.hang", "payload.corrupt")

#: Recognized ``RetryPolicy.failure_mode`` values: ``raise`` propagates
#: an :class:`~repro.exceptions.ExecutorBrokenError` after retries are
#: exhausted; ``fallback`` lets the runner degrade process -> thread ->
#: serial and finish the map.
FAILURE_MODES = ("raise", "fallback")

#: How long an injected ``tile.hang`` sleeps unless the plan's ``hang=``
#: entry overrides it.  Deliberately far above any sane ``tile_timeout``
#: so a hang is indistinguishable from a stuck worker.
DEFAULT_HANG_SECONDS = 30.0

_SPEC_RE = re.compile(r"^(?P<prob>[0-9.eE+-]+?)(?:[xX](?P<times>\d+))?$")


@dataclass(frozen=True)
class FaultSpec:
    """One site's firing rule: probability per injection point, trigger cap."""

    site: str
    probability: float
    max_triggers: int = 1

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{sorted(FAULT_SITES)}"
            )
        object.__setattr__(self, "probability", float(self.probability))
        object.__setattr__(self, "max_triggers", int(self.max_triggers))
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"fault probability must be in [0, 1], got {self.probability!r} "
                f"for site {self.site!r}"
            )
        if self.max_triggers < 1:
            raise ValueError(
                f"max_triggers must be >= 1, got {self.max_triggers!r} "
                f"for site {self.site!r}"
            )

    def describe(self) -> str:
        """This spec as one grammar entry (``site=prob[xN]``)."""
        text = f"{self.site}={self.probability!r}"
        if self.max_triggers != 1:
            text += f"x{self.max_triggers}"
        return text


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault specs; parses from / serializes to the grammar.

    Specs are normalized into site-registry order, so two plans naming
    the same faults compare equal regardless of how their grammar strings
    ordered the entries.  An empty plan (no specs) is falsy and injects
    nothing — :data:`repro.faults.NULL_INJECTOR` wraps one.
    """

    seed: int = 0
    hang_seconds: float = DEFAULT_HANG_SECONDS
    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "hang_seconds", float(self.hang_seconds))
        object.__setattr__(
            self,
            "specs",
            tuple(sorted(self.specs, key=lambda s: FAULT_SITES[s.site])),
        )
        if self.hang_seconds <= 0:
            raise ValueError(f"hang_seconds must be > 0, got {self.hang_seconds!r}")
        sites = [spec.site for spec in self.specs]
        if len(sites) != len(set(sites)):
            raise ValueError(f"duplicate fault site in plan: {sites}")

    def __bool__(self) -> bool:
        return bool(self.specs)

    def spec_for(self, site: str) -> FaultSpec | None:
        """The spec governing ``site``, or ``None`` when it never fires."""
        for spec in self.specs:
            if spec.site == site:
                return spec
        return None

    @classmethod
    def parse(cls, text: str | None) -> "FaultPlan":
        """Parse the one-line grammar; ``None``/empty yields the inert plan."""
        if text is None:
            return cls()
        seed = 0
        hang = DEFAULT_HANG_SECONDS
        specs: list[FaultSpec] = []
        for raw_entry in re.split(r"[;,]", text):
            entry = raw_entry.strip()
            if not entry:
                continue
            key, sep, value = entry.partition("=")
            key, value = key.strip(), value.strip()
            if not sep or not value:
                raise ValueError(
                    f"malformed fault entry {entry!r}; expected key=value"
                )
            if key == "seed":
                seed = int(value)
                continue
            if key == "hang":
                hang = float(value)
                continue
            match = _SPEC_RE.match(value)
            if match is None:
                raise ValueError(
                    f"malformed fault spec {entry!r}; expected "
                    f"<site>=<probability>[x<max_triggers>]"
                )
            specs.append(
                FaultSpec(
                    site=key,
                    probability=float(match.group("prob")),
                    max_triggers=int(match.group("times") or 1),
                )
            )
        return cls(seed=seed, hang_seconds=hang, specs=tuple(specs))

    def describe(self) -> str:
        """The canonical grammar string; ``parse(describe())`` round-trips."""
        parts = [f"seed={self.seed}"]
        if self.hang_seconds != DEFAULT_HANG_SECONDS:
            parts.append(f"hang={self.hang_seconds!r}")
        parts.extend(spec.describe() for spec in self.specs)
        return ";".join(parts)


@dataclass(frozen=True)
class RetryPolicy:
    """The self-healing executors' bounded-retry contract.

    ``max_retries`` bounds *unproductive* recovery rounds (a round that
    completed at least one item resets nothing and costs nothing — the
    bound is on consecutive wasted rebuilds, so a slowly succeeding map
    is never abandoned).  ``max_retries=0`` restores the pre-hardening
    behaviour exactly: the first pool failure propagates.

    ``tile_timeout`` (seconds per work item, ``None`` = wait forever)
    routes process maps through the per-item submit path so a hung
    worker can be detected, killed and its item retried.

    ``failure_mode`` decides what an exhausted retry budget means:
    ``"raise"`` propagates :class:`~repro.exceptions.ExecutorBrokenError`
    (carrying the completed prefix), ``"fallback"`` asks the runner to
    finish the pending items on a degraded executor (thread, then
    serial) — bitwise-safe because cell substreams are keyed, not
    positional.
    """

    max_retries: int = 2
    backoff_seconds: float = 0.05
    backoff_cap: float = 2.0
    tile_timeout: float | None = None
    failure_mode: str = "raise"

    def __post_init__(self) -> None:
        object.__setattr__(self, "max_retries", int(self.max_retries))
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries!r}")
        if self.backoff_seconds < 0:
            raise ValueError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds!r}"
            )
        if self.backoff_cap < 0:
            raise ValueError(f"backoff_cap must be >= 0, got {self.backoff_cap!r}")
        if self.tile_timeout is not None:
            object.__setattr__(self, "tile_timeout", float(self.tile_timeout))
            if self.tile_timeout <= 0:
                raise ValueError(
                    f"tile_timeout must be > 0 or None, got {self.tile_timeout!r}"
                )
        if self.failure_mode not in FAILURE_MODES:
            raise ValueError(
                f"failure_mode must be one of {FAILURE_MODES}, "
                f"got {self.failure_mode!r}"
            )

    def delay(self, attempt: int) -> float:
        """Exponential backoff before retry round ``attempt`` (capped)."""
        return min(self.backoff_seconds * (2.0 ** int(attempt)), self.backoff_cap)
