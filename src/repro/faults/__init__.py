"""`repro.faults` — deterministic fault injection and bounded recovery.

The robustness layer has two halves that share this package:

**Injection** (:mod:`repro.faults.plan`, :mod:`repro.faults.injector`)
    A :class:`FaultPlan` (the ``REPRO_FAULTS`` grammar, e.g.
    ``"seed=7;worker.crash=0.5x2;cache.corrupt=1.0"``) and the
    :class:`FaultInjector` that answers, at each compiled-in site,
    whether the fault fires — a pure function of ``(seed, site, index,
    attempt)`` derived through the experiments' own keyed-substream
    machinery, so chaos tests replay the identical fault pattern on
    every run and in every process.

**Recovery** (:class:`RetryPolicy` plus hooks across the stack)
    The contract the self-healing executors run under: bounded
    exponential-backoff pool rebuilds, per-tile timeouts, and a
    ``failure_mode`` that either raises a resumable
    :class:`~repro.exceptions.ExecutorBrokenError` or lets the runner
    degrade process → thread → serial.  Recovery is provably
    digest-neutral because every cell's RNG substream is keyed by
    ``(seed, tag)`` — re-executing a failed tile redraws bitwise
    identical noise wherever it lands.

Instrumented code reads the **active injector**
(:func:`active_injector`), a module-global slot installed by
:func:`use_injector` around each Session entry point — the same pattern
(and for the same thread-visibility reasons) as
:func:`repro.obs.use_recorder`.  The default is the inert
:data:`NULL_INJECTOR`, so an unconfigured stack pays one spec-miss per
site.
"""

from __future__ import annotations

from .injector import (
    NULL_INJECTOR,
    FaultInjector,
    active_injector,
    make_injector,
    use_injector,
)
from .plan import (
    DEFAULT_HANG_SECONDS,
    EXECUTOR_SITES,
    FAILURE_MODES,
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)

__all__ = [
    "DEFAULT_HANG_SECONDS",
    "EXECUTOR_SITES",
    "FAILURE_MODES",
    "FAULT_SITES",
    "NULL_INJECTOR",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "active_injector",
    "make_injector",
    "use_injector",
]
