"""`FaultInjector` — deterministic fault decisions and corruption actions.

The injector is the runtime half of :mod:`repro.faults.plan`: production
code asks it, at each compiled-in site, "does the fault fire *here*?".
The answer is a pure function of ``(plan.seed, site, index, attempt)``,
computed through the same keyed-substream derivation the experiments use
(:func:`repro.privacy.rng.derive_substream`, version-2 format, under a
dedicated domain word so fault streams can never collide with noise
streams).  Purity is the point: a process-pool child and its parent
agree on which items crash without exchanging any state, and re-running
a chaos test replays the exact fault pattern.

Two query styles:

:meth:`FaultInjector.decide`
    Stateless — the caller supplies the attempt number.  Used by the
    executor sites, where the parent tracks per-item attempts across
    pool rebuilds and ships the attempt to the child with the work.
:meth:`FaultInjector.consume`
    Stateful — the injector counts how often each ``(site, index)``
    point has fired and stops at the spec's ``max_triggers``.  Used by
    the in-process sites (cache corruption, transient IO, budget crash),
    where "fail twice then succeed" needs memory.  Calls are made from
    deterministic code paths, so the counts — and therefore the fired
    pattern — are reproducible too.

Like the observability layer's recorder, the *active* injector is a
module-global slot (:func:`use_injector` installs one around each
Session entry point; see :mod:`repro.obs` for why a ``ContextVar`` would
hand lazily created pool threads the wrong one).  The default is
:data:`NULL_INJECTOR`, whose every query is a dictionary miss — the
fault hooks cost one attribute read plus a predictable branch when no
chaos is configured.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from pathlib import Path

from ..obs import active_recorder
from ..privacy.rng import derive_substream
from .plan import EXECUTOR_SITES, FAULT_SITES, FaultPlan

__all__ = [
    "NULL_INJECTOR",
    "FaultInjector",
    "active_injector",
    "make_injector",
    "use_injector",
]

#: Domain word prefixing every fault-decision substream tag: fault draws
#: live in their own namespace, disjoint from every experiment stream.
_FAULT_DOMAIN = 0xFA0175

#: Second word distinguishing corruption-position draws from fire/no-fire
#: decision draws at the same ``(site, index)``.
_CORRUPT_WORD = 0xC0


class FaultInjector:
    """Answer "does fault ``site`` fire at point ``index``?" — reproducibly.

    ``plan=None`` (or an empty plan) builds an inert injector: every
    query returns ``False`` after one spec lookup.  The injector itself
    is cheap to construct and picklable-by-plan: process-pool children
    rebuild one from ``plan.describe()`` rather than receiving parent
    state, which is safe exactly because decisions are stateless
    functions of the plan.
    """

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self._fired: dict[tuple[str, int], int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether any site can fire at all."""
        return bool(self.plan)

    def site_active(self, site: str) -> bool:
        """Whether ``site`` has a spec with non-zero probability."""
        spec = self.plan.spec_for(site)
        return spec is not None and spec.probability > 0.0

    @property
    def executor_faults_active(self) -> bool:
        """Whether any process-worker site is live (routes maps through
        the per-item submit path so crashes/hangs/corruption are caught)."""
        return any(self.site_active(site) for site in EXECUTOR_SITES)

    def describe(self) -> str:
        """The underlying plan's canonical grammar string."""
        return self.plan.describe()

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def decide(self, site: str, index: int, attempt: int = 0) -> bool:
        """Stateless decision: does ``site`` fire at ``index`` on ``attempt``?

        The underlying uniform draw depends only on ``(seed, site,
        index)`` — not the attempt — so a selected point fires on
        attempts ``0 .. max_triggers-1`` and then succeeds: the grammar's
        ``x<N>`` reads "fail the first N tries".
        """
        spec = self.plan.spec_for(site)
        if spec is None or spec.probability <= 0.0:
            return False
        if attempt >= spec.max_triggers:
            return False
        if spec.probability >= 1.0:
            return True
        gen = derive_substream(
            self.plan.seed,
            [_FAULT_DOMAIN, FAULT_SITES[site], int(index)],
            stream_version=2,
        )
        return float(gen.random()) < spec.probability

    def consume(self, site: str, index: int) -> bool:
        """Stateful decision for in-process sites: counts its own attempts.

        Each ``(site, index)`` point remembers how many times it has
        fired; once the spec's ``max_triggers`` is reached the point
        stays quiet, which is what lets a retry loop around the site
        eventually succeed.  Fires are recorded as
        ``faults.injected.<site>`` counters on the active recorder.
        """
        with self._lock:
            attempt = self._fired.get((site, int(index)), 0)
            if not self.decide(site, index, attempt):
                return False
            self._fired[(site, int(index))] = attempt + 1
        recorder = active_recorder()
        recorder.counter("faults.injected")
        recorder.counter(f"faults.injected.{site}")
        return True

    # ------------------------------------------------------------------
    # Corruption actions
    # ------------------------------------------------------------------
    def corrupt_bytes(self, data: bytes, site: str, index: int) -> bytes:
        """Flip one deterministic byte of ``data`` (guaranteed to differ)."""
        if not data:
            return data
        gen = derive_substream(
            self.plan.seed,
            [_FAULT_DOMAIN, _CORRUPT_WORD, FAULT_SITES[site], int(index)],
            stream_version=2,
        )
        position = int(gen.integers(0, len(data)))
        mask = int(gen.integers(1, 256))  # non-zero XOR: the byte must change
        corrupted = bytearray(data)
        corrupted[position] ^= mask
        return bytes(corrupted)

    def corrupt_file(self, path: str | Path, site: str, index: int) -> None:
        """Flip one deterministic byte of the file at ``path``, in place."""
        path = Path(path)
        path.write_bytes(self.corrupt_bytes(path.read_bytes(), site, index))


#: The shared inert injector: every decision is one spec-miss.
NULL_INJECTOR = FaultInjector(None)

_ACTIVE: FaultInjector = NULL_INJECTOR


def active_injector() -> FaultInjector:
    """The injector fault sites should consult right now."""
    return _ACTIVE


@contextmanager
def use_injector(injector: FaultInjector):
    """Install ``injector`` as the active injector for the duration.

    Re-entrant like :func:`repro.obs.use_recorder` (and a module global
    for the same reason: lazily created executor worker threads must see
    the session's injector, which a thread-creation-time ``ContextVar``
    copy would not guarantee).  Forked process-pool children inherit the
    slot as of the fork, and pickled work re-derives an injector from
    the plan text instead.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous


def make_injector(faults: str | FaultPlan | None) -> FaultInjector:
    """The injector for one policy ``faults`` value (inactive → shared no-op)."""
    if faults is None:
        return NULL_INJECTOR
    plan = faults if isinstance(faults, FaultPlan) else FaultPlan.parse(faults)
    if not plan:
        return NULL_INJECTOR
    return FaultInjector(plan)
