"""`TraceRecorder` — hierarchical spans, typed counters, mergeable payloads.

One recorder observes one run.  Three primitives:

**spans**
    Timed, nested regions (``session.evaluate → plan → tile →
    kernel-batch → solve``).  :meth:`TraceRecorder.span` is a context
    manager; nesting is tracked per thread, so spans opened on executor
    worker threads parent correctly within their own thread and become
    additional roots of the trace.  Every span handle measures its own
    wall-clock ``seconds`` — the runtime reads that instead of keeping
    ad-hoc ``perf_counter`` pairs, which is what lets one code path serve
    both the timing results (``fit_seconds`` et al.) and the trace.
**counters**
    Monotonic sums (``prepared_cache.moment_hits``, ``runner.laplace_draws``,
    ``pool.created`` ...), merged additively across threads and workers.
**gauges**
    Last-value-wins measurements with a retained maximum
    (``process.pickled_bytes`` ...).

Deterministic safety is structural: a recorder never touches a random
generator, never rounds or re-associates a score, and is consulted only
*around* the numeric kernels — so enabling telemetry cannot change any
released value.  The golden-oracle suite asserts exactly that.

Cross-process merging: a recorder created inside a process-pool worker
exports its state as a plain-dict payload (:meth:`TraceRecorder.export`);
the parent merges payloads **in input order** (:meth:`TraceRecorder.merge`),
so the assembled trace is deterministic even though workers finish in any
order.  Span ids are rebased on merge and worker roots are re-parented
under the span active at the merge point.

Two recording modes share the class:

``mode="trace"``
    Every finished span is retained as an event (bounded by
    :data:`MAX_EVENTS`) and can be serialized to JSONL.
``mode="summary"``
    Only per-name aggregates (count, total/max seconds) are kept — O(1)
    memory per span name, the right cost for long sweeps.

:class:`NullRecorder` is the ``telemetry="off"`` implementation: counters
and gauges are discarded at one method-call cost, and its span handles
still measure ``seconds`` (the runtime needs the durations regardless) —
exactly the two ``perf_counter`` calls the pre-telemetry code paid.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from pathlib import Path

__all__ = ["MAX_EVENTS", "NullRecorder", "TraceRecorder", "make_recorder"]

#: Retention bound of ``mode="trace"`` — beyond it, spans still aggregate
#: into the summary but stop being retained as individual events (the
#: ``meta.dropped_events`` counter records how many).
MAX_EVENTS = 200_000

#: Recognized telemetry levels, in increasing retention order.
TELEMETRY_LEVELS = ("off", "summary", "trace")


class _SpanHandle:
    """One open span: measures its own duration, records itself on exit."""

    __slots__ = ("_recorder", "name", "attrs", "span_id", "parent_id", "t0", "seconds")

    def __init__(self, recorder, name: str, attrs: dict | None) -> None:
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self.span_id: int | None = None
        self.parent_id: int | None = None
        self.t0 = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "_SpanHandle":
        if self._recorder is not None:
            self._recorder._open(self)
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self.t0
        if self._recorder is not None:
            self._recorder._close(self)


class NullRecorder:
    """The ``telemetry="off"`` recorder: hot paths pay one null-check.

    Span handles still measure wall-clock (the runtime consumes the
    durations for ``fit_seconds``-style results whether or not telemetry
    is on); everything else is discarded.
    """

    mode = "off"

    @property
    def recording(self) -> bool:
        return False

    def span(self, name: str, **attrs) -> _SpanHandle:
        return _SpanHandle(None, name, None)

    def counter(self, name: str, value: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def merge(self, payload: dict | None) -> None:
        pass

    def export(self) -> dict:
        return {"counters": {}, "gauges": {}, "span_stats": {}, "events": []}

    def summary(self) -> dict:
        return {"mode": "off", "counters": {}, "gauges": {}, "spans": {}}

    def events(self) -> list[dict]:
        return []


#: The shared no-op instance ``make_recorder("off")`` hands out.
NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Thread-safe span/counter/gauge collection for one run.

    Parameters
    ----------
    mode:
        ``"trace"`` retains every finished span as an event (up to
        :data:`MAX_EVENTS`); ``"summary"`` keeps only per-name aggregates.
        Both modes collect counters, gauges and span aggregates.
    """

    def __init__(self, mode: str = "trace") -> None:
        if mode not in ("summary", "trace"):
            raise ValueError(f"mode must be 'summary' or 'trace', got {mode!r}")
        self.mode = mode
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._origin = time.perf_counter()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, dict[str, float]] = {}
        self._span_stats: dict[str, dict[str, float]] = {}
        self._events: list[dict] = []
        self._dropped = 0

    # ------------------------------------------------------------------
    # Recording primitives
    # ------------------------------------------------------------------
    @property
    def recording(self) -> bool:
        return True

    def span(self, name: str, **attrs) -> _SpanHandle:
        """A context manager timing one region; nests per thread."""
        return _SpanHandle(self, name, attrs or None)

    def counter(self, name: str, value: int = 1) -> None:
        """Add ``value`` to a monotonic counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(value)

    def gauge(self, name: str, value: float) -> None:
        """Record a measurement; keeps the last value and the maximum."""
        value = float(value)
        with self._lock:
            entry = self._gauges.get(name)
            if entry is None:
                self._gauges[name] = {"last": value, "max": value}
            else:
                entry["last"] = value
                entry["max"] = max(entry["max"], value)

    # ------------------------------------------------------------------
    # Span bookkeeping (called by the handles)
    # ------------------------------------------------------------------
    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, handle: _SpanHandle) -> None:
        stack = self._stack()
        handle.parent_id = stack[-1] if stack else None
        with self._lock:
            handle.span_id = next(self._ids)
        stack.append(handle.span_id)

    def _close(self, handle: _SpanHandle) -> None:
        stack = self._stack()
        if stack and stack[-1] == handle.span_id:
            stack.pop()
        elif handle.span_id in stack:  # pragma: no cover - defensive
            stack.remove(handle.span_id)
        with self._lock:
            stats = self._span_stats.setdefault(
                handle.name, {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0}
            )
            stats["count"] += 1
            stats["total_seconds"] += handle.seconds
            stats["max_seconds"] = max(stats["max_seconds"], handle.seconds)
            if self.mode == "trace":
                if len(self._events) < MAX_EVENTS:
                    event = {
                        "type": "span",
                        "id": handle.span_id,
                        "parent": handle.parent_id,
                        "name": handle.name,
                        "t0": handle.t0 - self._origin,
                        "seconds": handle.seconds,
                    }
                    if handle.attrs:
                        event["attrs"] = handle.attrs
                    self._events.append(event)
                else:
                    self._dropped += 1

    def current_span_id(self) -> int | None:
        """The calling thread's innermost open span id (merge anchor)."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # Cross-process shipping
    # ------------------------------------------------------------------
    def export(self) -> dict:
        """This recorder's state as a plain-dict payload (picklable)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": {k: dict(v) for k, v in self._gauges.items()},
                "span_stats": {k: dict(v) for k, v in self._span_stats.items()},
                "events": [dict(e) for e in self._events],
                "dropped": self._dropped,
            }

    def merge(self, payload: dict | None) -> None:
        """Fold a worker's exported payload into this recorder.

        Counters add, gauges keep last-write (call order = input order, so
        the result is deterministic) and track the max, span aggregates
        add, and — in trace mode — the worker's events are rebased onto
        fresh ids and re-parented under the calling thread's active span.
        """
        if not payload:
            return
        anchor = self.current_span_id()
        with self._lock:
            for name, value in payload.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + int(value)
            for name, entry in payload.get("gauges", {}).items():
                mine = self._gauges.get(name)
                if mine is None:
                    self._gauges[name] = dict(entry)
                else:
                    mine["last"] = entry["last"]
                    mine["max"] = max(mine["max"], entry["max"])
            for name, stats in payload.get("span_stats", {}).items():
                mine = self._span_stats.setdefault(
                    name, {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0}
                )
                mine["count"] += stats["count"]
                mine["total_seconds"] += stats["total_seconds"]
                mine["max_seconds"] = max(mine["max_seconds"], stats["max_seconds"])
            self._dropped += payload.get("dropped", 0)
            if self.mode != "trace":
                return
            events = payload.get("events", [])
            id_map: dict[int, int] = {}
            for event in events:
                id_map[event["id"]] = next(self._ids)
            for event in events:
                if len(self._events) >= MAX_EVENTS:
                    self._dropped += 1
                    continue
                rebased = dict(event)
                rebased["id"] = id_map[event["id"]]
                parent = event.get("parent")
                rebased["parent"] = id_map.get(parent, anchor) if parent else anchor
                self._events.append(rebased)

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """The aggregated view: counters, gauges, per-name span stats."""
        with self._lock:
            return {
                "mode": self.mode,
                "counters": dict(sorted(self._counters.items())),
                "gauges": {k: dict(v) for k, v in sorted(self._gauges.items())},
                "spans": {k: dict(v) for k, v in sorted(self._span_stats.items())},
            }

    def events(self) -> list[dict]:
        """Retained span events (trace mode; empty under summary mode)."""
        with self._lock:
            return [dict(e) for e in self._events]

    def trace_lines(self, meta: dict | None = None) -> list[dict]:
        """The full JSONL document as parsed objects (schema order)."""
        header = {
            "type": "meta",
            "version": 1,
            "mode": self.mode,
            "dropped_events": self._dropped,
        }
        if meta:
            header.update(meta)
        return [header, *self.events(), {"type": "summary", **self.summary()}]

    def write_jsonl(self, path: str | Path, meta: dict | None = None) -> Path:
        """Serialize the trace to one JSON object per line; returns the path."""
        path = Path(path)
        lines = self.trace_lines(meta)
        path.write_text("".join(json.dumps(line) + "\n" for line in lines))
        return path


def make_recorder(telemetry: str) -> TraceRecorder | NullRecorder:
    """The recorder for one policy telemetry level (``off`` → shared no-op)."""
    if telemetry == "off":
        return NULL_RECORDER
    if telemetry in ("summary", "trace"):
        return TraceRecorder(mode=telemetry)
    raise ValueError(
        f"telemetry must be one of {TELEMETRY_LEVELS}, got {telemetry!r}"
    )
