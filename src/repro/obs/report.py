"""Loading and summarizing trace files (`python -m repro trace summarize`).

Formatting lives here so the CLI subcommand stays a thin dispatcher and
tests can assert on the rendered report without spawning a process.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..exceptions import ReproError
from .schema import validate_trace_lines

__all__ = ["load_trace", "summarize_trace"]


def load_trace(path: str | Path) -> list[dict]:
    """Parse a JSONL trace file into its line objects, validating as we go."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"trace file not found: {path}")
    lines: list[dict] = []
    for number, raw in enumerate(path.read_text().splitlines(), start=1):
        if not raw.strip():
            continue
        try:
            lines.append(json.loads(raw))
        except json.JSONDecodeError as error:
            raise ReproError(f"{path}:{number}: not valid JSON ({error})") from None
    problems = validate_trace_lines(lines)
    if problems:
        detail = "; ".join(problems[:5])
        more = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
        raise ReproError(f"{path}: trace does not conform to schema: {detail}{more}")
    return lines


def summarize_trace(lines: list[dict]) -> str:
    """Render a human-readable report of one validated trace document."""
    meta = lines[0]
    summary = lines[-1]
    n_events = len(lines) - 2
    out: list[str] = []

    out.append(
        f"trace: mode={meta.get('mode')}  schema v{meta.get('version')}  "
        f"{n_events} span events"
        + (f"  ({meta['dropped_events']} dropped)" if meta.get("dropped_events") else "")
    )
    if "entry_point" in meta:
        out.append(f"entry point: {meta['entry_point']}")
    policy = meta.get("policy")
    if isinstance(policy, dict):
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(policy.items()))
        out.append(f"policy: {rendered}")

    spans = summary.get("spans", {})
    if spans:
        width = max(len(name) for name in spans)
        out.append("")
        out.append(
            f"{'span':<{width}}  {'count':>7}  {'total_s':>10}  {'mean_s':>10}  "
            f"{'max_s':>10}"
        )
        for name in sorted(spans, key=lambda n: -spans[n]["total_seconds"]):
            stats = spans[name]
            mean = stats["total_seconds"] / max(stats["count"], 1)
            out.append(
                f"{name:<{width}}  {stats['count']:>7}  "
                f"{stats['total_seconds']:>10.4f}  {mean:>10.4f}  "
                f"{stats['max_seconds']:>10.4f}"
            )

    counters = summary.get("counters", {})
    if counters:
        width = max(len(name) for name in counters)
        out.append("")
        out.append(f"{'counter':<{width}}  {'value':>12}")
        for name in sorted(counters):
            out.append(f"{name:<{width}}  {counters[name]:>12}")

    gauges = summary.get("gauges", {})
    if gauges:
        width = max(len(name) for name in gauges)
        out.append("")
        out.append(f"{'gauge':<{width}}  {'last':>12}  {'max':>12}")
        for name in sorted(gauges):
            entry = gauges[name]
            out.append(f"{name:<{width}}  {entry['last']:>12g}  {entry['max']:>12g}")

    if not (spans or counters or gauges):
        out.append("(trace contains no recorded activity)")
    return "\n".join(out)
