"""`repro.obs` — deterministic-safe tracing, metrics and profiling hooks.

The observability layer the rest of the stack reports into: hierarchical
spans (``session.evaluate → plan → tile → kernel.batch → solve``), typed
counters/gauges (cache hits, pool reuse, pickled bytes, posdef fallbacks,
Newton iterations, Laplace draw counts, budget ledger events), and a
per-run :class:`TraceRecorder` that serializes to JSONL and aggregates to
a summary dict.  See :mod:`repro.obs.recorder` for the model and
:mod:`repro.obs.schema` for the trace file format.

Instrumented code does not thread a recorder argument through every call:
it reads the **active recorder**, a module-level slot installed by
:func:`use_recorder` around each Session entry point.  This is a plain
module global rather than a ``contextvars.ContextVar`` on purpose —
executor *worker threads* must observe the recorder installed by the
session thread, and a ContextVar copied at thread creation would hand
pool threads (created lazily, possibly under a different run) the wrong
one.  Process-pool workers are handled explicitly instead: the executor
installs a fresh recorder in the child and ships its exported payload
back with the result (see :mod:`repro.runtime.executor`).

The default active recorder is the no-op :class:`NullRecorder`, so
un-instrumented use of the library pays one attribute read plus a
predictable branch per hook.
"""

from __future__ import annotations

from contextlib import contextmanager

from .recorder import (
    MAX_EVENTS,
    NULL_RECORDER,
    TELEMETRY_LEVELS,
    NullRecorder,
    TraceRecorder,
    make_recorder,
)
from .schema import TRACE_SCHEMA_VERSION, validate_trace_lines
from .report import load_trace, summarize_trace

__all__ = [
    "MAX_EVENTS",
    "NULL_RECORDER",
    "TELEMETRY_LEVELS",
    "TRACE_SCHEMA_VERSION",
    "NullRecorder",
    "TraceRecorder",
    "active_recorder",
    "load_trace",
    "make_recorder",
    "summarize_trace",
    "use_recorder",
    "validate_trace_lines",
]

_ACTIVE: TraceRecorder | NullRecorder = NULL_RECORDER


def active_recorder() -> TraceRecorder | NullRecorder:
    """The recorder instrumented code should report into right now."""
    return _ACTIVE


@contextmanager
def use_recorder(recorder: TraceRecorder | NullRecorder):
    """Install ``recorder`` as the active recorder for the duration.

    Re-entrant: nesting the *same* recorder (a Session entry point calling
    another) is transparent; nesting a different one shadows the outer one
    until exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = previous
