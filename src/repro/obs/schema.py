"""The JSONL trace file format, and a validator for it.

A trace file is a sequence of JSON objects, one per line:

line 1 — ``meta``
    ``{"type": "meta", "version": 1, "mode": "trace"|"summary",
    "dropped_events": <int>, ...}`` plus whatever the producer attaches
    (Session traces embed the canonical ``policy`` dict and the entry
    point).  ``version`` is :data:`TRACE_SCHEMA_VERSION`.
lines 2..n-1 — ``span`` events (trace mode only)
    ``{"type": "span", "id": <int>, "parent": <int|null>, "name": <str>,
    "t0": <float>, "seconds": <float>, "attrs": {...}?}``.  Ids are
    unique within the file; ``parent`` references an earlier-or-later id
    or is null for roots; ``t0`` is seconds since the recorder's origin.
line n — ``summary``
    ``{"type": "summary", "mode": ..., "counters": {name: int},
    "gauges": {name: {"last": float, "max": float}},
    "spans": {name: {"count": int, "total_seconds": float,
    "max_seconds": float}}}``.

Wall-clock fields (``t0``, ``seconds``, ``*_seconds``) live only here —
never in digest inputs — so traces from two runs differ while the runs'
scores are bitwise identical.
"""

from __future__ import annotations

__all__ = ["TRACE_SCHEMA_VERSION", "validate_trace_lines"]

TRACE_SCHEMA_VERSION = 1

_SPAN_REQUIRED = {"id": int, "name": str, "t0": (int, float), "seconds": (int, float)}
_SUMMARY_REQUIRED = ("counters", "gauges", "spans")


def validate_trace_lines(lines: list[dict]) -> list[str]:
    """Check parsed trace lines against the schema; returns the problems.

    An empty return value means the document conforms.  Problems are
    human-readable strings naming the offending line (1-based).
    """
    problems: list[str] = []
    if not lines:
        return ["empty trace: expected at least meta and summary lines"]

    meta = lines[0]
    if meta.get("type") != "meta":
        problems.append("line 1: expected a meta object")
    else:
        if meta.get("version") != TRACE_SCHEMA_VERSION:
            problems.append(
                f"line 1: version {meta.get('version')!r} != {TRACE_SCHEMA_VERSION}"
            )
        if meta.get("mode") not in ("summary", "trace"):
            problems.append(f"line 1: unrecognized mode {meta.get('mode')!r}")

    if lines[-1].get("type") != "summary":
        problems.append(f"line {len(lines)}: expected a trailing summary object")
    else:
        summary = lines[-1]
        for key in _SUMMARY_REQUIRED:
            if not isinstance(summary.get(key), dict):
                problems.append(f"line {len(lines)}: summary missing dict {key!r}")

    seen_ids: set[int] = set()
    spans = lines[1:-1]
    for offset, event in enumerate(spans, start=2):
        where = f"line {offset}"
        if event.get("type") != "span":
            problems.append(f"{where}: unexpected type {event.get('type')!r}")
            continue
        for field, kind in _SPAN_REQUIRED.items():
            if not isinstance(event.get(field), kind) or isinstance(
                event.get(field), bool
            ):
                problems.append(f"{where}: span field {field!r} missing or mistyped")
        span_id = event.get("id")
        if isinstance(span_id, int):
            if span_id in seen_ids:
                problems.append(f"{where}: duplicate span id {span_id}")
            seen_ids.add(span_id)
        parent = event.get("parent")
        if parent is not None and not isinstance(parent, int):
            problems.append(f"{where}: parent must be an int or null")
        if isinstance(event.get("seconds"), (int, float)) and event["seconds"] < 0:
            problems.append(f"{where}: negative span duration")

    # Parent references must resolve within the file (order-independent:
    # merged worker spans may precede their re-parenting anchor).
    for offset, event in enumerate(spans, start=2):
        parent = event.get("parent")
        if isinstance(parent, int) and parent not in seen_ids:
            problems.append(f"line {offset}: parent {parent} references no span")

    return problems
