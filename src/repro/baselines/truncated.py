"""Truncated — the non-private truncated-objective baseline.

Section 7 includes ``Truncated`` "so as to investigate the error incurred by
the low-order approximation approach": it minimizes the Section-5 truncated
objective ``f_hat_D(w)`` exactly, with **no noise**.  The gap

* NoPrivacy -> Truncated measures the Taylor-truncation cost (Lemma 3/4),
* Truncated -> FM measures the Laplace-noise cost (Algorithm 1),

which is how Figures 4c-d/5c-d/6c-d decompose FM's total error.

For the linear task the objective is already an exact polynomial, so
``Truncated`` coincides with ``NoPrivacy`` (the paper omits it from the
linear panels for this reason); it is still constructible here for harness
uniformity and the equivalence is asserted by tests.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..core.objectives import (
    LinearRegressionObjective,
    LogisticRegressionObjective,
)
from ..exceptions import DataError
from ..regression.logistic import sigmoid
from .base import BaselineRegressor, Task, register_algorithm

__all__ = ["Truncated"]


@register_algorithm("Truncated")
class Truncated(BaselineRegressor):
    """Exact minimizer of the noise-free truncated objective.

    Parameters
    ----------
    task:
        ``"linear"`` or ``"logistic"``.
    approximation:
        Approximation basis for the logistic objective (``"taylor"`` /
        ``"chebyshev"``), matching
        :class:`~repro.core.objectives.LogisticRegressionObjective`.
    """

    is_private = False

    def __init__(
        self,
        task: Task,
        approximation: Literal["taylor", "chebyshev"] = "taylor",
        radius: float = 1.0,
    ) -> None:
        super().__init__(task)
        self.approximation = approximation
        self.radius = float(radius)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Truncated":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] == 0:
            raise DataError(f"X must be a non-empty 2-d matrix, got shape {X.shape}")
        d = X.shape[1]
        if self.task == "linear":
            objective = LinearRegressionObjective(d)
        else:
            objective = LogisticRegressionObjective(
                d, approximation=self.approximation, radius=self.radius
            )
        objective.validate(X, y)
        form = objective.aggregate_quadratic(X, y)
        # The noise-free M is PSD but may be singular (rank-deficient X);
        # the minimum-norm stationary point 2 M w = -alpha via pseudo-inverse
        # is the natural generalization of the closed-form solve.
        try:
            self.coef_ = form.minimize()
        except Exception:
            from ..runtime.backend import active_backend

            self.coef_ = active_backend().pinv(2.0 * form.M) @ (-form.alpha)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        coef = self._require_fitted()
        X = np.asarray(X, dtype=float)
        scores = X @ coef
        if self.task == "linear":
            return scores
        return (sigmoid(scores) > 0.5).astype(float)
