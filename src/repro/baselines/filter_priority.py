"""FP — Filter-Priority publication of sparse data (Cormode et al., ICDT 2012).

The second private competitor in Section 7.  Where DPME noises *every* grid
cell, FP exploits sparsity: most cells of a high-dimensional histogram are
empty, and materializing noise for all of them is both slow and utility-
destroying.  FP publishes a *compact* noisy summary:

1. **Filter.**  Add ``Lap(2/epsilon)`` to each non-empty cell; keep the
   noisy value only if it clears a threshold ``theta``.
2. **Empty-cell simulation.**  Cells that are empty would pass the filter
   only if their (never materialized) noise exceeded ``theta``; the number
   of such cells is ``Binomial(n_empty, p)`` with
   ``p = Pr[Lap(b) >= theta] = 0.5 exp(-theta/b)``, and each passing cell's
   value is ``theta`` plus an ``Exp(b)`` overshoot (the memoryless Laplace
   tail).  Sampling this directly is distribution-identical to noising all
   empty cells and filtering — the trick that makes FP output-sensitive.
3. **Priority.**  Keep the ``m`` largest noisy counts, fixing the output
   size.

The released summary is then synthesized into data and fitted exactly like
DPME.  Accuracy degrades with dimensionality for the same structural reason
(coarser grids, thinner cells), which is the behaviour Figure 4 reports.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import DataError
from ..privacy.laplace import laplace_noise, laplace_scale
from ..privacy.rng import RngLike, ensure_rng
from ..regression.logistic import sigmoid
from .base import BaselineRegressor, Task, register_algorithm
from .dpme import build_joint_grid, fit_on_synthetic
from .histogram import COUNT_SENSITIVITY, DEFAULT_CELL_BUDGET, Grid, histogram_counts
from .synthesize import synthesize_from_counts

__all__ = ["FilterPriority"]


@register_algorithm("FP")
class FilterPriority(BaselineRegressor):
    """Cormode et al. (2012): filtered, priority-sampled noisy histogram.

    Parameters
    ----------
    task:
        ``"linear"`` or ``"logistic"``.
    epsilon:
        Privacy budget; spent on the (conceptual) noisy histogram release.
    output_factor:
        Output size as a multiple of the number of non-empty cells
        (the priority step keeps ``m = output_factor * n_nonempty`` cells).
    theta:
        Filter threshold.  ``None`` (default) picks the threshold at which
        the *expected* number of spurious empty cells passing equals ``m``
        — beyond that the output would be mostly noise cells.
    cell_budget:
        Global cap on grid cells (shared with DPME for comparability).
    """

    is_private = True

    def __init__(
        self,
        task: Task,
        epsilon: float,
        rng: RngLike = None,
        output_factor: float = 1.0,
        theta: float | None = None,
        cell_budget: int = DEFAULT_CELL_BUDGET,
        synthesis_mode: str = "points",
        placement: str = "uniform",
    ) -> None:
        super().__init__(task)
        self.epsilon = float(epsilon)
        if output_factor <= 0.0 or not math.isfinite(output_factor):
            raise ValueError(f"output_factor must be positive, got {output_factor!r}")
        self.output_factor = float(output_factor)
        self.theta = theta
        self.cell_budget = int(cell_budget)
        self.synthesis_mode = synthesis_mode
        self.placement = placement
        self._rng = ensure_rng(rng)
        self.grid_: Grid | None = None
        self.published_cells_: int | None = None

    # ------------------------------------------------------------------
    def _choose_theta(self, scale: float, n_empty: int, m: int) -> float:
        """Threshold with expected spurious passes ~= m.

        Solving ``n_empty * 0.5 exp(-theta/scale) = m`` for ``theta``;
        clamped at 0 (a negative threshold would admit *more* noise-only
        cells than the all-cells baseline).
        """
        if n_empty <= 0 or m <= 0:
            return 0.0
        ratio = n_empty / (2.0 * m)
        if ratio <= 1.0:
            return 0.0
        return scale * math.log(ratio)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "FilterPriority":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] == 0:
            raise DataError(f"X must be a non-empty 2-d matrix, got shape {X.shape}")
        n, d = X.shape
        grid = build_joint_grid(n, d, self.task, cell_budget=self.cell_budget)
        counts = histogram_counts(grid, np.hstack([X, y[:, None]]))
        scale = laplace_scale(COUNT_SENSITIVITY, self.epsilon)
        nonzero = np.nonzero(counts)[0]
        empty_count = grid.total_cells - nonzero.size
        m = max(1, int(round(self.output_factor * max(nonzero.size, 1))))
        theta = (
            self._choose_theta(scale, empty_count, m)
            if self.theta is None
            else float(self.theta)
        )

        # Step 1: filter the materialized (non-empty) cells.
        noisy_nonzero = counts[nonzero] + laplace_noise(
            COUNT_SENSITIVITY, self.epsilon, size=nonzero.size, rng=self._rng
        )
        keep = noisy_nonzero >= theta
        kept_indices = list(nonzero[keep])
        kept_values = list(noisy_nonzero[keep])

        # Step 2: simulate the empty cells' filtered noise without
        # materializing them.
        if empty_count > 0 and scale > 0.0:
            p_pass = 0.5 * math.exp(-max(theta, 0.0) / scale)
            passing = int(self._rng.binomial(empty_count, min(p_pass, 1.0)))
            if passing > 0:
                # Sample distinct empty cells.  For tractability sample flat
                # indices uniformly and reject collisions with non-empty
                # cells (sparse regime: collisions are rare).
                nonzero_set = set(int(i) for i in nonzero)
                chosen: set[int] = set()
                attempts = 0
                while len(chosen) < passing and attempts < 20 * passing + 100:
                    candidates = self._rng.integers(
                        0, grid.total_cells, size=passing - len(chosen)
                    )
                    for c in candidates:
                        c = int(c)
                        if c not in nonzero_set and c not in chosen:
                            chosen.add(c)
                    attempts += passing
                overshoot = self._rng.exponential(scale, size=len(chosen))
                kept_indices.extend(chosen)
                kept_values.extend(max(theta, 0.0) + overshoot)

        # Step 3: priority — keep the m largest noisy counts.
        published = np.zeros(grid.total_cells)
        if kept_indices:
            idx = np.asarray(kept_indices, dtype=int)
            vals = np.asarray(kept_values, dtype=float)
            if idx.size > m:
                top = np.argsort(vals)[-m:]
                idx, vals = idx[top], vals[top]
            published[idx] = vals
        synthetic = synthesize_from_counts(
            grid, published, mode=self.synthesis_mode, placement=self.placement, rng=self._rng
        )
        self.coef_ = fit_on_synthetic(synthetic, self.task, d)
        self.grid_ = grid
        self.published_cells_ = int(np.count_nonzero(published))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        coef = self._require_fitted()
        X = np.asarray(X, dtype=float)
        scores = X @ coef
        if self.task == "linear":
            return scores
        return (sigmoid(scores) > 0.5).astype(float)
