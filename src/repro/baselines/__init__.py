"""Baseline algorithms from the paper's evaluation (Section 7) and beyond.

Importing this package registers every algorithm in the string registry:

============ ================ =========================================
Name         Private?         Source
============ ================ =========================================
FM           yes (epsilon)    this paper (Algorithms 1-2 + Section 6)
DPME         yes (epsilon)    Lei, NIPS 2011
FP           yes (epsilon)    Cormode et al., ICDT 2012
NoPrivacy    no               plain OLS / logistic MLE
Truncated    no               noise-free Section-5 truncated objective
OutputPerturbation      yes   Chaudhuri et al., JMLR 2011 (comparator)
ObjectivePerturbation   yes   Chaudhuri et al., JMLR 2011 (comparator)
============ ================ =========================================
"""

from .base import (
    BaselineRegressor,
    Task,
    algorithm_is_private,
    algorithm_names,
    canonical_algorithm_name,
    make_algorithm,
    register_algorithm,
)
from .dpme import DPME, build_joint_grid, fit_on_synthetic
from .filter_priority import FilterPriority
from .histogram import (
    COUNT_SENSITIVITY,
    Grid,
    choose_bins_per_dim,
    histogram_counts,
)
from .noprivacy import FMBaseline, NoPrivacy
from .objective_perturbation import ObjectivePerturbation
from .output_perturbation import OutputPerturbation, gamma_sphere_noise
from .synthesize import SyntheticData, synthesize_from_counts
from .truncated import Truncated

__all__ = [
    "BaselineRegressor",
    "Task",
    "algorithm_is_private",
    "algorithm_names",
    "canonical_algorithm_name",
    "make_algorithm",
    "register_algorithm",
    "DPME",
    "build_joint_grid",
    "fit_on_synthetic",
    "FilterPriority",
    "COUNT_SENSITIVITY",
    "Grid",
    "choose_bins_per_dim",
    "histogram_counts",
    "FMBaseline",
    "NoPrivacy",
    "ObjectivePerturbation",
    "OutputPerturbation",
    "gamma_sphere_noise",
    "SyntheticData",
    "synthesize_from_counts",
    "Truncated",
]
