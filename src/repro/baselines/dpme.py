"""DPME — Lei's differentially private M-estimators (NIPS 2011).

The paper's strongest private competitor.  The pipeline (Section 2 of the
paper describes it):

1. Lay an equi-width grid over the joint ``(x, y)`` domain, with granularity
   shrinking in ``n`` and growing coarser in ``d`` (Lei's bandwidth rule —
   see :func:`~repro.baselines.histogram.choose_bins_per_dim`).
2. Release every cell count with ``Lap(2 / epsilon)`` noise (replace-one
   count sensitivity is 2).  This is the *only* step that touches the data,
   so the whole pipeline is ``epsilon``-DP.
3. Generate a synthetic dataset matching the noisy histogram (we regress on
   noisy-count-weighted cell centers, which is how Lei's M-estimator
   consumes the histogram and is equivalent to materializing the rows).
4. Run ordinary (non-private) regression on the synthetic data.

The dimensionality curse the paper highlights emerges naturally: at fixed
``n``, more attributes force coarser bins *and* spread the Laplace noise
over exponentially more cells, so the synthetic data — and the regression
fitted to it — degrade sharply with ``d`` (Figure 4's DPME lines).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError
from ..privacy.laplace import laplace_noise
from ..privacy.rng import RngLike, ensure_rng
from ..regression.linear import LinearRegression
from ..regression.logistic import LogisticRegressionModel, sigmoid
from .base import BaselineRegressor, Task, register_algorithm
from .histogram import (
    COUNT_SENSITIVITY,
    DEFAULT_CELL_BUDGET,
    Grid,
    choose_bins_per_dim,
    histogram_counts,
)
from .synthesize import SyntheticData, synthesize_from_counts

__all__ = ["DPME", "build_joint_grid", "fit_on_synthetic"]

#: Tiny ridge applied when fitting on synthetic data; noisy histograms often
#: produce separable or rank-deficient synthetic sets and the original
#: estimators would silently blow up.
_SYNTHETIC_FIT_L2 = 1e-8


def build_joint_grid(
    n: int,
    num_features: int,
    task: Task,
    cell_budget: int = DEFAULT_CELL_BUDGET,
) -> Grid:
    """The joint ``(x, y)`` grid both histogram baselines share.

    Features occupy ``[0, 1/sqrt(d)]`` each (footnote-1 normalization); the
    target is the **last** dimension: ``[-1, 1]`` for linear regression or a
    2-bin ``[0, 1]`` binary dimension for logistic.
    """
    d = int(num_features)
    width = 1.0 / np.sqrt(d)
    lower = np.concatenate([np.zeros(d), [-1.0 if task == "linear" else 0.0]])
    upper = np.concatenate([np.full(d, width), [1.0]])
    binary = np.zeros(d + 1, dtype=bool)
    if task == "logistic":
        binary[-1] = True
    bins = choose_bins_per_dim(n, d + 1, cell_budget=cell_budget, binary_dims=binary)
    return Grid(lower=lower, upper=upper, bins_per_dim=bins)


def fit_on_synthetic(synthetic: SyntheticData, task: Task, dim: int) -> np.ndarray:
    """Fit the task's standard model on synthetic data; returns the weights.

    A synthetic release with no mass (all noisy counts clamped to zero)
    yields the zero parameter — the least-informative but always-defined
    answer.
    """
    if synthetic.effective_size <= 0.0:
        return np.zeros(dim)
    if task == "linear":
        model = LinearRegression().fit(synthetic.X, synthetic.y, sample_weight=synthetic.weights)
        return model.coef_
    labels = (synthetic.y > 0.5).astype(float)
    if np.unique(labels).size < 2:
        # Single-class synthetic data: the MLE direction is undefined; the
        # zero parameter predicts 0.5 everywhere, which is the honest output.
        return np.zeros(dim)
    model = LogisticRegressionModel(l2=_SYNTHETIC_FIT_L2).fit(
        synthetic.X, labels, sample_weight=synthetic.weights
    )
    return model.coef_


@register_algorithm("DPME")
class DPME(BaselineRegressor):
    """Lei (2011): noisy multi-dimensional histogram -> synthetic data -> fit.

    Parameters
    ----------
    task:
        ``"linear"`` or ``"logistic"``.
    epsilon:
        Privacy budget; fully spent on the histogram release.
    cell_budget:
        Global cap on grid cells (memory guard; the granularity rule rarely
        hits it below ``d ~ 16``).
    rng:
        Seed or generator for the count noise.
    """

    is_private = True

    def __init__(
        self,
        task: Task,
        epsilon: float,
        rng: RngLike = None,
        cell_budget: int = DEFAULT_CELL_BUDGET,
        synthesis_mode: str = "points",
        placement: str = "uniform",
    ) -> None:
        super().__init__(task)
        self.epsilon = float(epsilon)
        self.cell_budget = int(cell_budget)
        # "points" materializes the synthetic dataset row by row as the
        # original method does (this is what makes DPME's runtime grow with
        # n and d in Figures 7-8); "weighted" is the O(cells) equivalent for
        # fast test runs.
        self.synthesis_mode = synthesis_mode
        self.placement = placement
        self._rng = ensure_rng(rng)
        self.grid_: Grid | None = None
        self.synthetic_size_: float | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DPME":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] == 0:
            raise DataError(f"X must be a non-empty 2-d matrix, got shape {X.shape}")
        n, d = X.shape
        grid = build_joint_grid(n, d, self.task, cell_budget=self.cell_budget)
        counts = histogram_counts(grid, np.hstack([X, y[:, None]]))
        noisy = counts + laplace_noise(
            COUNT_SENSITIVITY, self.epsilon, size=counts.shape, rng=self._rng
        )
        synthetic = synthesize_from_counts(
            grid, noisy, mode=self.synthesis_mode, placement=self.placement, rng=self._rng
        )
        self.coef_ = fit_on_synthetic(synthetic, self.task, d)
        self.grid_ = grid
        self.synthetic_size_ = synthetic.effective_size
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        coef = self._require_fitted()
        X = np.asarray(X, dtype=float)
        scores = X @ coef
        if self.task == "linear":
            return scores
        return (sigmoid(scores) > 0.5).astype(float)
