"""Common interface for all regression algorithms in the evaluation.

Section 7 compares five algorithms — FM, DPME, FP, NoPrivacy, Truncated —
on two tasks.  The harness treats them uniformly through
:class:`BaselineRegressor`: construct with a task (``"linear"`` or
``"logistic"``), call :meth:`fit`, and score with the task's paper metric
(MSE or misclassification rate).  A string registry
(:func:`make_algorithm`) lets experiment configs name algorithms
declaratively.
"""

from __future__ import annotations

import abc
from typing import Literal

import numpy as np

from ..exceptions import ExperimentError, NotFittedError
from ..privacy.rng import RngLike
from ..regression.metrics import mean_squared_error, misclassification_rate

__all__ = [
    "Task",
    "BaselineRegressor",
    "register_algorithm",
    "make_algorithm",
    "algorithm_names",
    "algorithm_is_private",
    "canonical_algorithm_name",
]

Task = Literal["linear", "logistic"]

_VALID_TASKS = ("linear", "logistic")


class BaselineRegressor(abc.ABC):
    """A regression algorithm usable by the Section-7 harness.

    Subclasses set :attr:`name` and :attr:`is_private` as class attributes
    and implement :meth:`fit` / :meth:`predict`.  ``predict`` returns target
    predictions for the linear task and hard {0, 1} labels for the logistic
    task, so :meth:`score` can apply the paper's metric uniformly.
    """

    #: Display name used in reports (e.g. "FM", "DPME").
    name: str = "abstract"
    #: Whether the algorithm enforces epsilon-differential privacy.
    is_private: bool = False

    def __init__(self, task: Task) -> None:
        if task not in _VALID_TASKS:
            raise ExperimentError(f"task must be one of {_VALID_TASKS}, got {task!r}")
        self.task: Task = task
        self.coef_: np.ndarray | None = None

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "BaselineRegressor":
        """Fit on normalized data (footnote-1 features, task target domain)."""

    @abc.abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets (linear) or hard labels (logistic)."""

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """The paper's accuracy metric: MSE (linear) / misclassification (logistic)."""
        predictions = self.predict(X)
        if self.task == "linear":
            return mean_squared_error(y, predictions)
        return misclassification_rate(y, predictions)

    def _require_fitted(self) -> np.ndarray:
        if self.coef_ is None:
            raise NotFittedError(type(self).__name__)
        return self.coef_


_REGISTRY: dict[str, type] = {}


def register_algorithm(name: str):
    """Class decorator adding a baseline to the string registry."""

    def decorator(cls: type) -> type:
        key = name.lower()
        if key in _REGISTRY:
            raise ExperimentError(f"algorithm {name!r} is already registered")
        _REGISTRY[key] = cls
        cls.name = name
        return cls

    return decorator


def _lookup(name: str) -> type:
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise ExperimentError(
            f"unknown algorithm {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def make_algorithm(
    name: str,
    task: Task,
    epsilon: float | None = None,
    rng: RngLike = None,
    **kwargs,
) -> BaselineRegressor:
    """Instantiate a registered algorithm by name.

    Private algorithms receive ``epsilon`` and ``rng``; non-private ones
    ignore them (passing a budget to NoPrivacy is not an error — the harness
    sweeps epsilon uniformly and the paper's Figures 6 show NoPrivacy as a
    flat line).
    """
    cls = _lookup(name)
    if cls.is_private:
        if epsilon is None:
            raise ExperimentError(f"algorithm {name!r} is private and requires epsilon")
        return cls(task=task, epsilon=epsilon, rng=rng, **kwargs)
    return cls(task=task, **kwargs)


def algorithm_names() -> list[str]:
    """Registered algorithm names (lower-case keys)."""
    return sorted(_REGISTRY)


def algorithm_is_private(name: str) -> bool:
    """Whether a registered algorithm claims epsilon-differential privacy.

    Used by the conformance auditor (:mod:`repro.verify.conformance`) to
    enumerate which registry entries carry a guarantee worth auditing.
    """
    return bool(_lookup(name).is_private)


def canonical_algorithm_name(name: str) -> str:
    """The display-cased registry name (e.g. ``"fm" -> "FM"``)."""
    return _lookup(name).name
