"""Output perturbation: noise the regression *result* instead of the objective.

Sections 1-2 of the paper explain why this naive design fails for standard
regression: the sensitivity of ``argmin`` is intractable (linear) or
unbounded (unregularized logistic on separable data).  The workable variant
— due to Chaudhuri, Monteleoni & Sarwate (JMLR 2011) — requires a
``Lambda``-strongly-convex ERM objective, under which the L2 sensitivity of
the averaged-loss minimizer is ``2 L / (n Lambda)`` for ``L``-Lipschitz
per-tuple losses.

We implement that variant as a contextual comparator (it is *not* in the
paper's figures; the ablation bench uses it to show where FM's
noise-the-coefficients design wins):

* logistic loss is ``L = 1``-Lipschitz under ``||x||_2 <= 1``;
* squared loss is **not** globally Lipschitz in ``w``; we use the bound
  ``L = 2 (1 + R)`` valid on the ball ``||w|| <= R`` and project the
  minimizer onto that ball before adding noise, which restores a rigorous
  guarantee at the cost of a hyper-parameter (exactly the awkwardness the
  paper criticizes).

Noise is the standard ``epsilon``-DP vector draw with density proportional
to ``exp(-epsilon ||b|| / S)``: direction uniform on the sphere, norm
``Gamma(d, S / epsilon)``.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import DataError
from ..privacy.rng import RngLike, ensure_rng
from ..regression.linear import RidgeRegression
from ..regression.logistic import LogisticRegressionModel, sigmoid
from .base import BaselineRegressor, Task, register_algorithm

__all__ = ["OutputPerturbation", "gamma_sphere_noise"]


def gamma_sphere_noise(
    dim: int, sensitivity: float, epsilon: float, rng: RngLike = None
) -> np.ndarray:
    """Draw ``b`` with density proportional to ``exp(-epsilon ||b||_2 / S)``.

    The norm follows ``Gamma(shape=dim, scale=S/epsilon)`` and the direction
    is uniform on the unit sphere — the construction used for L2-sensitivity
    calibrated pure ``epsilon``-DP releases.
    """
    gen = ensure_rng(rng)
    if sensitivity == 0.0:
        return np.zeros(dim)
    norm = gen.gamma(shape=dim, scale=sensitivity / epsilon)
    direction = gen.normal(size=dim)
    direction /= np.linalg.norm(direction)
    return norm * direction


@register_algorithm("OutputPerturbation")
class OutputPerturbation(BaselineRegressor):
    """Strongly-convex ERM + calibrated noise on the fitted parameter.

    Parameters
    ----------
    task:
        ``"linear"`` or ``"logistic"``.
    epsilon:
        Privacy budget.
    lam:
        Strong-convexity constant ``Lambda`` of the averaged objective
        ``(1/n) sum_i loss + (Lambda/2) ||w||^2``.  Smaller ``lam`` means
        less bias but proportionally more noise — the tension FM avoids.
    projection_radius:
        Ball radius ``R`` for the linear task's Lipschitz bound.
    """

    is_private = True

    def __init__(
        self,
        task: Task,
        epsilon: float,
        rng: RngLike = None,
        lam: float = 0.01,
        projection_radius: float = 2.0,
    ) -> None:
        super().__init__(task)
        if lam <= 0.0 or not math.isfinite(lam):
            raise ValueError(f"lam must be positive (strong convexity), got {lam!r}")
        self.epsilon = float(epsilon)
        self.lam = float(lam)
        self.projection_radius = float(projection_radius)
        self._rng = ensure_rng(rng)
        self.sensitivity_: float | None = None

    def _lipschitz(self) -> float:
        if self.task == "logistic":
            # |d/dz softplus(z) - y| <= 1 and ||x|| <= 1.
            return 1.0
        # Squared loss: ||grad|| = |2 (y - x^T w)| ||x|| <= 2 (1 + R) on
        # ||w|| <= R with |y| <= 1, ||x|| <= 1.
        return 2.0 * (1.0 + self.projection_radius)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "OutputPerturbation":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] == 0:
            raise DataError(f"X must be a non-empty 2-d matrix, got shape {X.shape}")
        n, d = X.shape
        if self.task == "linear":
            # Averaged ridge objective: (1/n)||y - Xw||^2 + (lam/2)||w||^2
            # equals (up to scaling) RidgeRegression with penalty n*lam/2.
            model = RidgeRegression(lam=n * self.lam / 2.0).fit(X, y)
            omega = model.coef_
            norm = float(np.linalg.norm(omega))
            if norm > self.projection_radius:
                omega = omega * (self.projection_radius / norm)
        else:
            model = LogisticRegressionModel(l2=n * self.lam).fit(X, y)
            omega = model.coef_
        sensitivity = 2.0 * self._lipschitz() / (n * self.lam)
        self.sensitivity_ = sensitivity
        noise = gamma_sphere_noise(d, sensitivity, self.epsilon, rng=self._rng)
        self.coef_ = omega + noise
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        coef = self._require_fitted()
        X = np.asarray(X, dtype=float)
        scores = X @ coef
        if self.task == "linear":
            return scores
        return (sigmoid(scores) > 0.5).astype(float)
