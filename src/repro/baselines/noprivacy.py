"""NoPrivacy and FM adapters for the evaluation harness.

``NoPrivacy`` is Section 7's non-private reference line: plain OLS / plain
logistic MLE on the raw (normalized) data.  ``FM`` wraps the library's
estimators behind the same :class:`~repro.baselines.base.BaselineRegressor`
interface so experiment configs can name all algorithms uniformly.
"""

from __future__ import annotations

import numpy as np

from ..core.models import FMLinearRegression, FMLogisticRegression
from ..privacy.rng import RngLike
from ..regression.linear import LinearRegression
from ..regression.logistic import LogisticRegressionModel
from .base import BaselineRegressor, Task, register_algorithm

__all__ = ["NoPrivacy", "FMBaseline"]


@register_algorithm("NoPrivacy")
class NoPrivacy(BaselineRegressor):
    """Exact (non-private) regression: the paper's accuracy ceiling."""

    is_private = False

    def __init__(self, task: Task) -> None:
        super().__init__(task)
        self._model: LinearRegression | LogisticRegressionModel | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "NoPrivacy":
        if self.task == "linear":
            self._model = LinearRegression().fit(X, y)
        else:
            self._model = LogisticRegressionModel().fit(X, y)
        self.coef_ = self._model.coef_
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        assert self._model is not None
        return self._model.predict(X)


@register_algorithm("FM")
class FMBaseline(BaselineRegressor):
    """The Functional Mechanism behind the uniform harness interface.

    Extra keyword arguments (``post_processing``, ``tight_sensitivity``,
    ``approximation``, ``order`` ...) are forwarded to the underlying
    estimator, which makes the ablation benches one-liners.
    """

    is_private = True

    def __init__(
        self,
        task: Task,
        epsilon: float,
        rng: RngLike = None,
        **estimator_kwargs,
    ) -> None:
        super().__init__(task)
        self.epsilon = float(epsilon)
        if task == "linear":
            self._model = FMLinearRegression(epsilon=epsilon, rng=rng, **estimator_kwargs)
        else:
            self._model = FMLogisticRegression(epsilon=epsilon, rng=rng, **estimator_kwargs)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "FMBaseline":
        self._model.fit(X, y)
        self.coef_ = self._model.coef_
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return self._model.predict(X)
