"""Objective perturbation (Chaudhuri, Monteleoni & Sarwate, JMLR 2011).

The paper's closest intellectual neighbor (discussed at length in Sections
1-3): add a random *linear* term to a strongly-convex ERM objective,

    w_priv = argmin_w  (1/n) sum_i loss(t_i, w) + b^T w / n + (Lambda/2) ||w||^2,

with ``||b||`` drawn from ``Gamma(d, 2 L / epsilon')`` and a budget
correction ``epsilon' = epsilon - 2 log(1 + c / (n Lambda))`` accounting for
the curvature the noise hides (``c`` bounds each per-tuple loss's Hessian
eigenvalues).  When ``epsilon' <= 0`` the regularizer is raised to the
minimum value that leaves half the budget (the original paper's fallback).

The key contrast with FM that the paper draws: this method needs the loss
to be convex and doubly differentiable with *bounded derivatives per tuple*,
which standard boolean-label logistic regression satisfies only after
Chaudhuri et al.'s non-standard input modification, and which squared loss
satisfies only on a bounded parameter set.  We implement the mechanism
faithfully for the logistic loss (``L = 1``, ``c = 1/4``) and, for the
linear task, under the same ball-restricted Lipschitz reading used by
:mod:`~repro.baselines.output_perturbation` (``L = 2(1+R)``, ``c = 2``).
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import DataError
from ..privacy.rng import RngLike, ensure_rng
from ..regression.logistic import (
    logistic_gradient,
    logistic_hessian,
    logistic_loss,
    sigmoid,
)
from ..regression.solvers import NewtonSolver
from .base import BaselineRegressor, Task, register_algorithm
from .output_perturbation import gamma_sphere_noise

__all__ = ["ObjectivePerturbation"]


@register_algorithm("ObjectivePerturbation")
class ObjectivePerturbation(BaselineRegressor):
    """Chaudhuri-style ERM with a random linear term in the objective.

    Parameters
    ----------
    task:
        ``"linear"`` or ``"logistic"``.
    epsilon:
        Privacy budget.
    lam:
        Regularization constant ``Lambda`` (averaged-objective scale).
    projection_radius:
        Ball radius for the linear task's Lipschitz constant.
    """

    is_private = True

    def __init__(
        self,
        task: Task,
        epsilon: float,
        rng: RngLike = None,
        lam: float = 0.01,
        projection_radius: float = 2.0,
    ) -> None:
        super().__init__(task)
        if lam <= 0.0 or not math.isfinite(lam):
            raise ValueError(f"lam must be positive, got {lam!r}")
        self.epsilon = float(epsilon)
        self.lam = float(lam)
        self.projection_radius = float(projection_radius)
        self._rng = ensure_rng(rng)
        self.epsilon_prime_: float | None = None
        self.lam_effective_: float | None = None

    def _constants(self) -> tuple[float, float]:
        """(Lipschitz L, smoothness c) for the current task."""
        if self.task == "logistic":
            return 1.0, 0.25
        return 2.0 * (1.0 + self.projection_radius), 2.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ObjectivePerturbation":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] == 0:
            raise DataError(f"X must be a non-empty 2-d matrix, got shape {X.shape}")
        n, d = X.shape
        L, c = self._constants()
        lam = self.lam
        epsilon_prime = self.epsilon - 2.0 * math.log(1.0 + c / (n * lam))
        if epsilon_prime <= 0.0:
            # Fallback of the original algorithm: raise Lambda until the
            # curvature correction consumes exactly half the budget.
            lam = c / (n * (math.exp(self.epsilon / 4.0) - 1.0))
            epsilon_prime = self.epsilon / 2.0
        self.epsilon_prime_ = epsilon_prime
        self.lam_effective_ = lam
        b = gamma_sphere_noise(d, 2.0 * L, epsilon_prime, rng=self._rng)

        if self.task == "logistic":
            solver = NewtonSolver(max_iterations=200)
            result = solver.minimize(
                lambda w: logistic_loss(w, X, y) / n + (b @ w) / n + 0.5 * lam * float(w @ w),
                lambda w: logistic_gradient(w, X, y) / n + b / n + lam * w,
                lambda w: logistic_hessian(w, X, y) / n + lam * np.eye(d),
                np.zeros(d),
            )
            self.coef_ = result.x
        else:
            # Averaged squared loss + linear noise + ridge is quadratic:
            #   (1/n)(w^T X^T X w - 2 y^T X w + y^T y) + b^T w / n
            #   + (lam/2) ||w||^2,
            # stationary at (2 X^T X / n + lam I) w = (2 X^T y - b) / n.
            from ..runtime.backend import active_backend

            lhs = 2.0 * X.T @ X / n + lam * np.eye(d)
            rhs = (2.0 * X.T @ y - b) / n
            omega = active_backend().solve(lhs, rhs)
            # Projection onto the Lipschitz ball keeps the guarantee honest.
            norm = float(np.linalg.norm(omega))
            if norm > self.projection_radius:
                omega = omega * (self.projection_radius / norm)
            self.coef_ = omega
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        coef = self._require_fitted()
        X = np.asarray(X, dtype=float)
        scores = X @ coef
        if self.task == "linear":
            return scores
        return (sigmoid(scores) > 0.5).astype(float)
