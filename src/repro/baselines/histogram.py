"""Equi-width multi-dimensional grid histograms.

The two synthetic-data baselines (DPME, Filter-Priority) both discretize the
joint ``(x, y)`` domain into a grid, release noisy cell counts, and
regenerate data.  This module is their shared substrate:

* :class:`Grid` — an equi-width partition of a box ``[lower, upper]^dims``
  with per-dimension bin counts, supporting point->cell indexing, cell
  centers, and uniform sampling within cells;
* :func:`histogram_counts` — exact counts per cell;
* :func:`choose_bins_per_dim` — Lei-style granularity rule with a global
  cell-budget cap.  The rule coarsens as dimensionality grows, which is
  precisely the effect the paper blames for DPME's poor accuracy at
  ``d = 11, 14`` (Figure 4).

Counts use the *replace-one* neighbor convention of the paper: replacing a
tuple moves one unit of count between (at most) two cells, so the L1
sensitivity of the full count vector is 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError, DomainError
from ..privacy.rng import RngLike, ensure_rng

__all__ = [
    "Grid",
    "histogram_counts",
    "choose_bins_per_dim",
    "COUNT_SENSITIVITY",
]

#: L1 sensitivity of a cell-count vector under replace-one neighbors.
COUNT_SENSITIVITY = 2.0

#: Default upper bound on the total number of grid cells.
DEFAULT_CELL_BUDGET = 1 << 17


@dataclass(frozen=True)
class Grid:
    """An equi-width grid over the box ``prod_j [lower_j, upper_j]``.

    Parameters
    ----------
    lower, upper:
        Box bounds per dimension (upper strictly greater than lower).
    bins_per_dim:
        Number of equal-width bins in each dimension (>= 1).
    """

    lower: np.ndarray
    upper: np.ndarray
    bins_per_dim: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "lower", np.asarray(self.lower, dtype=float).ravel())
        object.__setattr__(self, "upper", np.asarray(self.upper, dtype=float).ravel())
        object.__setattr__(
            self, "bins_per_dim", np.asarray(self.bins_per_dim, dtype=int).ravel()
        )
        if not (self.lower.shape == self.upper.shape == self.bins_per_dim.shape):
            raise DataError("lower, upper and bins_per_dim must have equal length")
        if np.any(self.upper <= self.lower):
            raise DomainError("grid requires upper > lower in every dimension")
        if np.any(self.bins_per_dim < 1):
            raise DataError("bins_per_dim must be >= 1 everywhere")

    @property
    def dims(self) -> int:
        """Number of grid dimensions."""
        return self.lower.shape[0]

    @property
    def total_cells(self) -> int:
        """Total number of cells ``prod_j bins_j``."""
        return int(np.prod(self.bins_per_dim.astype(object)))

    @property
    def cell_widths(self) -> np.ndarray:
        """Per-dimension cell width."""
        return (self.upper - self.lower) / self.bins_per_dim

    def cell_indices(self, points: np.ndarray) -> np.ndarray:
        """Flat cell index (C-order) for each row of ``points``.

        Points on the upper boundary fall into the last bin; points outside
        the box raise :class:`~repro.exceptions.DomainError` (baselines
        operate on normalized data whose domain is declared up front, so an
        out-of-box point is a pipeline bug, not something to clip silently).
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != self.dims:
            raise DataError(
                f"points must be 2-d with {self.dims} columns, got shape {points.shape}"
            )
        tol = 1e-9
        below = points < self.lower - tol
        above = points > self.upper + tol
        if below.any() or above.any():
            raise DomainError("points fall outside the declared grid box")
        fractions = (points - self.lower) / (self.upper - self.lower)
        per_dim = np.minimum(
            (fractions * self.bins_per_dim).astype(int), self.bins_per_dim - 1
        )
        per_dim = np.maximum(per_dim, 0)
        return np.ravel_multi_index(per_dim.T, tuple(self.bins_per_dim))

    def cell_center(self, flat_index: np.ndarray | int) -> np.ndarray:
        """Center coordinates of one or many flat cell indices."""
        flat = np.atleast_1d(np.asarray(flat_index, dtype=int))
        if flat.size and (flat.min() < 0 or flat.max() >= self.total_cells):
            raise DataError("flat cell index out of range")
        per_dim = np.array(np.unravel_index(flat, tuple(self.bins_per_dim))).T
        centers = self.lower + (per_dim + 0.5) * self.cell_widths
        return centers if np.ndim(flat_index) else centers[0]

    def sample_in_cells(
        self, flat_indices: np.ndarray, rng: RngLike = None
    ) -> np.ndarray:
        """Draw one uniform point inside each given cell."""
        gen = ensure_rng(rng)
        flat = np.asarray(flat_indices, dtype=int)
        per_dim = np.array(np.unravel_index(flat, tuple(self.bins_per_dim))).T
        offsets = gen.uniform(0.0, 1.0, size=per_dim.shape)
        return self.lower + (per_dim + offsets) * self.cell_widths


def histogram_counts(grid: Grid, points: np.ndarray) -> np.ndarray:
    """Exact per-cell counts of ``points`` as a flat int64 vector."""
    indices = grid.cell_indices(points)
    return np.bincount(indices, minlength=grid.total_cells).astype(np.int64)


def choose_bins_per_dim(
    n: int,
    dims: int,
    cell_budget: int = DEFAULT_CELL_BUDGET,
    binary_dims: np.ndarray | None = None,
) -> np.ndarray:
    """Lei-style histogram granularity with a global cell cap.

    The DPME paper picks a bandwidth shrinking like ``(log n / n)^(1/(d+2))``;
    in bin terms we use ``m = round((n / log n)^(1/(dims + 2)))`` bins per
    continuous dimension, then repeatedly halve ``m`` until the total cell
    count fits the budget.  ``binary_dims`` marks dimensions (e.g. a boolean
    target or 0/1 attributes) that always get exactly 2 bins.

    The net effect reproduced here: with ``n`` fixed, growing ``dims`` forces
    coarser bins — the histogram's resolution collapses and the synthetic
    data (and thus DPME's regression accuracy) degrades, as in Figure 4.
    """
    n = int(n)
    dims = int(dims)
    if n < 1 or dims < 1:
        raise DataError(f"need n >= 1 and dims >= 1, got n={n}, dims={dims}")
    if cell_budget < 2**dims:
        # Even 2 bins everywhere overflows: fall back to 1-bin dims where
        # needed below.
        pass
    mask = np.zeros(dims, dtype=bool)
    if binary_dims is not None:
        mask = np.asarray(binary_dims, dtype=bool).ravel()
        if mask.shape[0] != dims:
            raise DataError("binary_dims must have one flag per dimension")
    m = max(2, int(round((n / max(math.log(n), 1.0)) ** (1.0 / (dims + 2)))))
    while True:
        bins = np.where(mask, 2, m)
        total = int(np.prod(bins.astype(object)))
        if total <= cell_budget or m == 1:
            break
        m = max(1, m // 2)
    if total > cell_budget:
        # Pathological dims: drop binary dims to 1 bin as a last resort.
        bins = np.ones(dims, dtype=int)
    return bins.astype(int)
