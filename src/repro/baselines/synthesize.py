"""Regenerating data from noisy histogram counts.

Both DPME and Filter-Priority end with the same move: a vector of noisy cell
counts over the joint ``(x, y)`` grid is turned back into a dataset that any
(non-private) regression can consume.  Two equivalent materializations are
offered:

``weighted`` (default)
    One representative point per retained cell — its center — with the
    rounded noisy count as a sample weight.  Mathematically identical to
    replicating the center ``count`` times for both weighted least squares
    and weighted logistic MLE, but O(cells) instead of O(sum of counts);
    this mirrors how Lei's M-estimator consumes the histogram directly.

``points``
    Explicit rows: each retained cell emits ``count`` points, either at the
    cell center or uniformly within the cell.  Used by tests (to confirm
    equivalence with ``weighted``) and by examples that want a tangible
    synthetic dataset.

Negative noisy counts are clamped to zero and fractional counts are rounded
— standard post-processing that costs no privacy budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..exceptions import DataError
from ..privacy.rng import RngLike, ensure_rng
from .histogram import Grid

__all__ = ["SyntheticData", "synthesize_from_counts"]

#: Hard cap on materialized synthetic rows (mode="points"); prevents a
#: pathological noise draw from exhausting memory.
_MAX_POINTS = 5_000_000


@dataclass(frozen=True)
class SyntheticData:
    """A synthetic dataset in split ``(X, y, weight)`` form.

    ``X`` holds the feature columns, ``y`` the target column (the last grid
    dimension), ``weights`` the per-row multiplicity (all ones in
    ``points`` mode).
    """

    X: np.ndarray
    y: np.ndarray
    weights: np.ndarray

    @property
    def effective_size(self) -> float:
        """Total synthetic mass ``sum(weights)``."""
        return float(self.weights.sum())


def synthesize_from_counts(
    grid: Grid,
    noisy_counts: np.ndarray,
    mode: Literal["weighted", "points"] = "weighted",
    placement: Literal["center", "uniform"] = "center",
    rng: RngLike = None,
) -> SyntheticData:
    """Turn noisy counts over a joint ``(x, y)`` grid into a dataset.

    Parameters
    ----------
    grid:
        The joint grid; its **last dimension is the target** ``y``.
    noisy_counts:
        Flat count vector (length ``grid.total_cells``); negatives are
        clamped, fractions rounded to the nearest integer.
    mode:
        ``"weighted"`` or ``"points"`` (see module docstring).
    placement:
        Where points land inside their cell (``points`` mode only).
    """
    if mode not in ("weighted", "points"):
        raise ValueError(f"mode must be 'weighted' or 'points', got {mode!r}")
    if placement not in ("center", "uniform"):
        raise ValueError(f"placement must be 'center' or 'uniform', got {placement!r}")
    counts = np.asarray(noisy_counts, dtype=float).ravel()
    if counts.shape[0] != grid.total_cells:
        raise DataError(
            f"count vector has length {counts.shape[0]}; grid has "
            f"{grid.total_cells} cells"
        )
    counts = np.round(np.maximum(counts, 0.0)).astype(np.int64)
    occupied = np.nonzero(counts)[0]
    if occupied.size == 0:
        # Degenerate release: no mass anywhere.  Return a single zero-weight
        # row at the grid center so downstream shape logic survives; callers
        # check effective_size before fitting.
        center = grid.cell_center(grid.total_cells // 2)
        return SyntheticData(
            X=center[None, :-1], y=center[None, -1].ravel(), weights=np.zeros(1)
        )
    if mode == "weighted":
        centers = grid.cell_center(occupied)
        return SyntheticData(
            X=centers[:, :-1],
            y=centers[:, -1],
            weights=counts[occupied].astype(float),
        )
    total = int(counts[occupied].sum())
    if total > _MAX_POINTS:
        raise DataError(
            f"synthetic dataset would have {total} rows (cap {_MAX_POINTS}); "
            f"use mode='weighted'"
        )
    flat = np.repeat(occupied, counts[occupied])
    if placement == "center":
        rows = grid.cell_center(flat)
    else:
        rows = grid.sample_in_cells(flat, rng=ensure_rng(rng))
    return SyntheticData(
        X=rows[:, :-1], y=rows[:, -1], weights=np.ones(rows.shape[0])
    )
