"""repro — Functional Mechanism: Regression Analysis under Differential Privacy.

A full reproduction of Zhang et al., VLDB 2012 (PVLDB 5(11):1364-1375):
differentially private linear and logistic regression by perturbing the
polynomial coefficients of the objective function, plus every substrate and
baseline the paper's evaluation depends on.

Quickstart
----------
>>> import numpy as np
>>> from repro import FMLinearRegression, FeatureScaler, TargetScaler
>>> rng = np.random.default_rng(0)
>>> raw_X = rng.uniform(0, 100, size=(5000, 3))
>>> raw_y = raw_X @ np.array([0.02, -0.01, 0.005]) + rng.normal(0, 0.3, 5000)
>>> X = FeatureScaler(lower=np.zeros(3), upper=np.full(3, 100.0)).transform(raw_X)
>>> y = TargetScaler(lower=raw_y.min(), upper=raw_y.max()).transform(raw_y)
>>> model = FMLinearRegression(epsilon=1.0, rng=0).fit(X, y)
>>> model.coef_.shape
(3,)

Package map
-----------
``repro.core``
    The Functional Mechanism itself (Algorithms 1-2, Section 6 repairs).
``repro.privacy``
    DP primitives: Laplace/exponential/geometric mechanisms, budget
    accounting, empirical auditing.
``repro.regression``
    From-scratch non-private regression engine (the NoPrivacy baseline).
``repro.baselines``
    DPME, Filter-Priority, output/objective perturbation, Truncated.
``repro.data``
    Synthetic IPUMS-like census data (US/Brazil substitution).
``repro.engine``
    Streaming, shardable sufficient-statistics engine: chunked/merged
    moment accumulation, N-way parallel ingestion, one-pass multi-epsilon
    sweeps, and a content-addressed accumulator cache
    (``python -m repro engine`` is the CLI entry point).
``repro.runtime``
    Batched cell-solver runtime for the repeated-CV protocol: up-front
    (rep, fold, epsilon) cell planning, stacked LAPACK kernels and a
    masked batched Newton with bitwise-identical scores, plus pluggable
    serial/thread/process executors (one-shot and session-held pooled
    variants) for the non-batchable baselines.
``repro.session``
    The unified Session/ExecutionPolicy API: one frozen, validated,
    JSON-serializable policy object for every execution knob (layered
    resolution over ``REPRO_*`` environment variables and policy files)
    and a Session facade owning cross-call state — prepared-data cache,
    reusable executor pool, dataset registry.  The canonical entry
    points; the legacy free functions are deprecation shims over it.
``repro.experiments``
    Table-2 parameter grid, cross-validation harness, per-figure drivers.
``repro.verify``
    DP conformance and golden-oracle verification (tiers 1-3).
``repro.analysis``
    Theorem-2 convergence and Lemma-3/4 approximation-error studies.
"""

from .core import (
    FMLinearRegression,
    FMLogisticRegression,
    FunctionalMechanism,
    LinearRegressionObjective,
    LogisticRegressionObjective,
    Polynomial,
    QuadraticForm,
)
from .engine import (
    AccumulatorCache,
    EpsilonSweepEngine,
    MomentAccumulator,
    MomentSnapshot,
    ShardedAccumulator,
)
from .exceptions import (
    BudgetExhaustedError,
    DataError,
    DomainError,
    NotFittedError,
    PrivacyError,
    ReproError,
    UnboundedObjectiveError,
)
from .privacy import LaplaceMechanism, PrivacyBudget
from .runtime import CellPlan, plan_cells, run_plan
from .session import ExecutionPolicy, Session
from .regression import (
    FeatureScaler,
    KFold,
    LinearRegression,
    LogisticRegressionModel,
    RidgeRegression,
    TargetScaler,
    binarize_labels,
    mean_squared_error,
    misclassification_rate,
)

__version__ = "1.0.0"

__all__ = [
    "FMLinearRegression",
    "FMLogisticRegression",
    "FunctionalMechanism",
    "LinearRegressionObjective",
    "LogisticRegressionObjective",
    "Polynomial",
    "QuadraticForm",
    "AccumulatorCache",
    "EpsilonSweepEngine",
    "MomentAccumulator",
    "MomentSnapshot",
    "ShardedAccumulator",
    "CellPlan",
    "plan_cells",
    "run_plan",
    "ExecutionPolicy",
    "Session",
    "BudgetExhaustedError",
    "DataError",
    "DomainError",
    "NotFittedError",
    "PrivacyError",
    "ReproError",
    "UnboundedObjectiveError",
    "LaplaceMechanism",
    "PrivacyBudget",
    "FeatureScaler",
    "KFold",
    "LinearRegression",
    "LogisticRegressionModel",
    "RidgeRegression",
    "TargetScaler",
    "binarize_labels",
    "mean_squared_error",
    "misclassification_rate",
    "__version__",
]
