"""Empirical validation of Theorem 2 (consistency of Algorithm 1).

Theorem 2: as the database cardinality ``n`` grows (tuples i.i.d. from a
fixed distribution), the output of Algorithm 1 converges to the minimizer of
the limiting averaged objective ``g(w)`` — the Laplace noise on each
coefficient is constant in ``n`` while the data term grows linearly, so the
*averaged* noisy objective ``(1/n) f_bar_D`` converges to ``g``.

:func:`convergence_study` measures this directly: for increasing ``n`` it
draws datasets from a fixed synthetic distribution, runs the FM estimator,
and records the parameter distance to the non-private population solution
and the excess objective value.  Tests assert the distances shrink; the
``convergence_demo`` example plots the decay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from ..core.models import FMLinearRegression, FMLogisticRegression
from ..privacy.rng import RngLike, derive_substream, ensure_rng
from ..regression.linear import LinearRegression
from ..regression.logistic import LogisticRegressionModel

__all__ = ["ConvergencePoint", "sample_population", "convergence_study"]


@dataclass(frozen=True)
class ConvergencePoint:
    """Convergence measurement at one cardinality.

    Attributes
    ----------
    n:
        Dataset cardinality.
    parameter_distance:
        Mean L2 distance ``||w_fm - w_population||`` over repetitions.
    relative_noise:
        Ratio of the noise scale to the magnitude of the smallest aggregated
        quadratic coefficient — the quantity Theorem 2 drives to zero.
    """

    n: int
    parameter_distance: float
    relative_noise: float


def sample_population(
    n: int,
    dim: int,
    task: Literal["linear", "logistic"],
    rng: RngLike = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Draw an i.i.d. dataset from the fixed study distribution.

    Features are uniform on ``[0, 1/sqrt(d)]^d`` (footnote-1 compliant);
    the target follows a fixed linear model with Gaussian noise (linear) or
    a Bernoulli draw from the logistic link (logistic).  Returns
    ``(X, y, w_true)``.
    """
    gen = ensure_rng(rng)
    dim = int(dim)
    # A fixed, seed-independent ground-truth parameter.
    w_true = np.array([0.9 * (-1.0) ** j / (1.0 + 0.3 * j) for j in range(dim)])
    X = gen.uniform(0.0, 1.0 / np.sqrt(dim), size=(int(n), dim))
    z = X @ w_true
    if task == "linear":
        y = np.clip(z + gen.normal(0.0, 0.05, int(n)), -1.0, 1.0)
    else:
        y = (gen.uniform(size=int(n)) < 1.0 / (1.0 + np.exp(-8.0 * (z - z.mean())))).astype(float)
    return X, y, w_true


def convergence_study(
    cardinalities: Sequence[int],
    dim: int = 4,
    task: Literal["linear", "logistic"] = "linear",
    epsilon: float = 1.0,
    repetitions: int = 5,
    seed: int = 0,
) -> list[ConvergencePoint]:
    """Measure FM's convergence to the population solution as ``n`` grows.

    The population solution is approximated by the non-private estimator on
    a large reference sample (10x the largest requested cardinality).
    """
    cardinalities = [int(n) for n in cardinalities]
    reference_n = 10 * max(cardinalities)
    X_ref, y_ref, _ = sample_population(reference_n, dim, task, rng=derive_substream(seed, [0]))
    if task == "linear":
        w_population = LinearRegression().fit(X_ref, y_ref).coef_
    else:
        w_population = LogisticRegressionModel().fit(X_ref, y_ref).coef_

    points = []
    for n in cardinalities:
        distances = []
        rel_noise = []
        for rep in range(int(repetitions)):
            stream = derive_substream(seed, [n, rep])
            X, y, _ = sample_population(n, dim, task, rng=stream)
            if task == "linear":
                model = FMLinearRegression(epsilon=epsilon, rng=stream).fit(X, y)
            else:
                model = FMLogisticRegression(epsilon=epsilon, rng=stream).fit(X, y)
            distances.append(float(np.linalg.norm(model.coef_ - w_population)))
            record = model.record_
            assert record is not None
            # Quadratic coefficients grow like n * E[x x^T]; the noise scale
            # is constant: their ratio is the Theorem-2 vanishing term.
            typical_coeff = n * (1.0 / (3.0 * dim))  # E[x_j^2] = 1/(3 d)
            rel_noise.append(record.noise_scale / typical_coeff)
        points.append(
            ConvergencePoint(
                n=n,
                parameter_distance=float(np.mean(distances)),
                relative_noise=float(np.mean(rel_noise)),
            )
        )
    return points
