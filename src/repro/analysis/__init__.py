"""Theory-validation studies: Theorem-2 convergence, Lemma-3/4 error bounds,
and pre-release noise calibration."""

from .approximation import TruncationErrorReport, measure_truncation_error
from .calibration import (
    CalibrationReport,
    calibration_report,
    cardinality_for_snr,
    coefficient_snr,
    epsilon_for_snr,
)
from .convergence import ConvergencePoint, convergence_study, sample_population

__all__ = [
    "TruncationErrorReport",
    "measure_truncation_error",
    "CalibrationReport",
    "calibration_report",
    "cardinality_for_snr",
    "coefficient_snr",
    "epsilon_for_snr",
    "ConvergencePoint",
    "convergence_study",
    "sample_population",
]
