"""Noise-calibration analysis: when is FM signal-dominated?

The Functional Mechanism's quadratic coefficients scale like
``n * E[x_j x_l]`` while its noise scale is the constant ``Delta / epsilon``
— their ratio (the *coefficient SNR*) governs everything the evaluation
observes: Theorem-2 convergence, the cardinality crossover against the
histogram baselines (Figure 5), and the small-budget degradation
(Figure 6).  This module turns that reasoning into numbers a practitioner
can use before spending any budget:

* :func:`coefficient_snr` — the predicted signal-to-noise ratio of the
  aggregated quadratic coefficients for a planned ``(n, d, epsilon)``;
* :func:`epsilon_for_snr` / :func:`cardinality_for_snr` — invert it for
  budget or sample-size planning;
* :func:`calibration_report` — a one-call summary including the noise
  scale, the Section-6.1 regularizer, and a rough "regime" verdict.

All inputs are *declared* quantities (domain geometry, planned sizes), so
using this module consumes no privacy budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

from ..core.objectives import (
    LinearRegressionObjective,
    LogisticRegressionObjective,
)
from ..exceptions import DataError

__all__ = [
    "coefficient_snr",
    "epsilon_for_snr",
    "cardinality_for_snr",
    "CalibrationReport",
    "calibration_report",
]

#: Default second moment E[x_j^2] for features uniform on [0, 1/sqrt(d)]:
#: (1/3) * (1/d).  Callers with different feature geometry pass their own.
def _default_mean_square(d: int) -> float:
    return 1.0 / (3.0 * d)


def _sensitivity(task: Literal["linear", "logistic"], d: int, tight: bool) -> float:
    if task == "linear":
        return LinearRegressionObjective(d).sensitivity(tight=tight)
    if task == "logistic":
        return LogisticRegressionObjective(d).sensitivity(tight=tight)
    raise DataError(f"task must be 'linear' or 'logistic', got {task!r}")


def _quadratic_coefficient_scale(
    task: str, n: int, d: int, mean_square_feature: float | None
) -> float:
    msf = _default_mean_square(d) if mean_square_feature is None else float(mean_square_feature)
    if msf <= 0:
        raise DataError(f"mean_square_feature must be positive, got {msf!r}")
    scale = n * msf
    if task == "logistic":
        scale *= 0.125  # the Taylor a_2 = 1/8 multiplies M
    return scale


def coefficient_snr(
    n: int,
    d: int,
    epsilon: float,
    task: Literal["linear", "logistic"] = "linear",
    mean_square_feature: float | None = None,
    tight: bool = False,
) -> float:
    """Predicted ratio of diagonal quadratic coefficients to the noise scale.

    A value well above 1 means the data term dominates the injected noise
    (FM tracks the non-private solution); below ~1 the released objective is
    mostly noise and Section-6 repairs carry the release.

    >>> round(coefficient_snr(100_000, 13, 0.8), 2)   # census-like default
    5.23
    """
    n = int(n)
    d = int(d)
    if n < 1 or d < 1:
        raise DataError(f"need n >= 1 and d >= 1, got n={n}, d={d}")
    if epsilon <= 0 or not math.isfinite(epsilon):
        raise DataError(f"epsilon must be positive and finite, got {epsilon!r}")
    delta = _sensitivity(task, d, tight)
    signal = _quadratic_coefficient_scale(task, n, d, mean_square_feature)
    return signal / (delta / epsilon)


def epsilon_for_snr(
    target_snr: float,
    n: int,
    d: int,
    task: Literal["linear", "logistic"] = "linear",
    mean_square_feature: float | None = None,
    tight: bool = False,
) -> float:
    """Smallest budget achieving ``target_snr`` at the planned ``(n, d)``.

    SNR is linear in epsilon, so the inversion is exact.
    """
    if target_snr <= 0:
        raise DataError(f"target_snr must be positive, got {target_snr!r}")
    unit = coefficient_snr(
        n, d, 1.0, task=task, mean_square_feature=mean_square_feature, tight=tight
    )
    return target_snr / unit


def cardinality_for_snr(
    target_snr: float,
    epsilon: float,
    d: int,
    task: Literal["linear", "logistic"] = "linear",
    mean_square_feature: float | None = None,
    tight: bool = False,
) -> int:
    """Smallest cardinality achieving ``target_snr`` at the planned budget."""
    if target_snr <= 0:
        raise DataError(f"target_snr must be positive, got {target_snr!r}")
    unit = coefficient_snr(
        1, d, epsilon, task=task, mean_square_feature=mean_square_feature, tight=tight
    )
    return max(1, math.ceil(target_snr / unit))


@dataclass(frozen=True)
class CalibrationReport:
    """Pre-release noise profile for a planned FM fit.

    Attributes
    ----------
    sensitivity:
        Lemma-1 ``Delta`` for the task and bound variant.
    noise_scale:
        Laplace scale ``Delta / epsilon`` per coefficient.
    regularizer:
        The Section-6.1 ridge ``lambda = 4 sqrt(2) Delta / epsilon``.
    snr:
        Predicted coefficient signal-to-noise ratio.
    regime:
        ``"signal-dominated"`` (snr >= 3), ``"marginal"`` (1-3) or
        ``"noise-dominated"`` (< 1) — thresholds matched to where the
        Figure-5/6 benches show FM tracking vs. losing the floor.
    """

    sensitivity: float
    noise_scale: float
    regularizer: float
    snr: float
    regime: str


def calibration_report(
    n: int,
    d: int,
    epsilon: float,
    task: Literal["linear", "logistic"] = "linear",
    mean_square_feature: float | None = None,
    tight: bool = False,
) -> CalibrationReport:
    """One-call noise profile for a planned private regression."""
    delta = _sensitivity(task, int(d), tight)
    snr = coefficient_snr(
        n, d, epsilon, task=task, mean_square_feature=mean_square_feature, tight=tight
    )
    if snr >= 3.0:
        regime = "signal-dominated"
    elif snr >= 1.0:
        regime = "marginal"
    else:
        regime = "noise-dominated"
    return CalibrationReport(
        sensitivity=delta,
        noise_scale=delta / epsilon,
        regularizer=4.0 * math.sqrt(2.0) * delta / epsilon,
        snr=snr,
        regime=regime,
    )
