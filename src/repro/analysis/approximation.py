"""Empirical validation of the Lemma 3/4 approximation-error bounds.

Section 5.2 proves that truncating the logistic objective's Taylor series at
degree 2 costs at most a small *data-independent* constant per tuple in
averaged objective value: ``(e^2 - e) / (6 (1 + e)^3) ~= 0.015``.

:func:`measure_truncation_error` evaluates the realized gap

    (1/n) * [ f_tilde_D(w_hat) - f_tilde_D(w_tilde) ]

on concrete datasets — ``w_tilde`` from exact logistic MLE, ``w_hat`` from
the truncated objective — and compares it against the bound.  The test
suite asserts the bound holds for the paper's working regime (expansion
point 0, scores within the remainder interval ``|x^T w| <= 1``); the
Figure-3 bench prints the measured gaps next to the 0.015 constant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.objectives import LogisticRegressionObjective
from ..core.taylor import (
    logistic_truncation_error_bound,
    logistic_truncation_error_bound_two_sided,
)
from ..exceptions import DataError
from ..regression.logistic import LogisticRegressionModel
from ..regression.solvers import solve_quadratic

__all__ = ["TruncationErrorReport", "measure_truncation_error"]


@dataclass(frozen=True)
class TruncationErrorReport:
    """Measured vs bounded truncation error for one dataset.

    Attributes
    ----------
    measured_gap:
        Realized ``(f(w_hat) - f(w_tilde)) / n`` on the exact objective
        (non-negative by optimality of ``w_tilde``).
    paper_bound:
        The paper's quoted constant (~0.015).
    strict_bound:
        The conservative two-sided Lemma-3 value (2x the paper's).
    max_score:
        Largest ``|x^T w|`` reached by either solution — the Lemma-4
        remainder interval assumption is ``<= 1``; larger scores void the
        bound (reported so callers can check applicability).
    """

    measured_gap: float
    paper_bound: float
    strict_bound: float
    max_score: float

    @property
    def within_paper_bound(self) -> bool:
        """Whether the realized gap respects the paper's constant."""
        return self.measured_gap <= self.paper_bound + 1e-12

    @property
    def within_strict_bound(self) -> bool:
        """Whether the realized gap respects the two-sided constant."""
        return self.measured_gap <= self.strict_bound + 1e-12


def measure_truncation_error(
    X: np.ndarray,
    y: np.ndarray,
    approximation: str = "taylor",
) -> TruncationErrorReport:
    """Compare exact and truncated logistic solutions on one dataset."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if X.ndim != 2 or X.shape[0] == 0:
        raise DataError(f"X must be a non-empty 2-d matrix, got shape {X.shape}")
    n, d = X.shape
    objective = LogisticRegressionObjective(d, approximation=approximation)
    objective.validate(X, y)
    exact_model = LogisticRegressionModel().fit(X, y)
    w_exact = exact_model.coef_
    form = objective.aggregate_quadratic(X, y)
    try:
        w_truncated = solve_quadratic(form).x
    except Exception:
        from ..runtime.backend import active_backend

        w_truncated = active_backend().pinv(2.0 * form.M) @ (-form.alpha)
    gap = (
        objective.true_loss(w_truncated, X, y) - objective.true_loss(w_exact, X, y)
    ) / n
    scores = np.abs(np.concatenate([X @ w_exact, X @ w_truncated]))
    return TruncationErrorReport(
        measured_gap=float(gap),
        paper_bound=logistic_truncation_error_bound(),
        strict_bound=logistic_truncation_error_bound_two_sided(),
        max_score=float(scores.max()) if scores.size else 0.0,
    )
