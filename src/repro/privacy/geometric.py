"""The two-sided geometric mechanism for integer-valued queries.

Histogram baselines (DPME, Filter-Priority) protect *counts*.  The Laplace
mechanism works but produces non-integer noisy counts; the two-sided
geometric mechanism (Ghosh, Roughgarden, Sundararajan, STOC 2009) is its
discrete analogue and keeps counts integral, which simplifies synthetic-data
generation.  Both are provided; the baselines default to Laplace (as the
original papers do) with geometric noise available as a drop-in option.

For sensitivity ``S`` and budget ``epsilon``, noise ``k`` is drawn with

    Pr[k] = (1 - a) / (1 + a) * a^|k|,    a = exp(-epsilon / S)

which satisfies ``epsilon``-DP for integer queries of L1 sensitivity ``S``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidBudgetError, SensitivityError
from .rng import RngLike, ensure_rng

__all__ = ["two_sided_geometric_noise", "GeometricMechanism"]


def two_sided_geometric_noise(
    sensitivity: float,
    epsilon: float,
    size: int | tuple[int, ...] | None = None,
    rng: RngLike = None,
) -> np.ndarray | int:
    """Draw two-sided geometric noise calibrated to ``(sensitivity, epsilon)``.

    The draw is the difference of two i.i.d. geometric variables, a standard
    sampler for the discrete Laplace distribution.
    """
    epsilon = float(epsilon)
    if not math.isfinite(epsilon) or epsilon <= 0.0:
        raise InvalidBudgetError(f"epsilon must be positive and finite, got {epsilon!r}")
    sensitivity = float(sensitivity)
    if not math.isfinite(sensitivity) or sensitivity < 0.0:
        raise SensitivityError(f"sensitivity must be non-negative, got {sensitivity!r}")
    gen = ensure_rng(rng)
    if sensitivity == 0.0:
        return 0 if size is None else np.zeros(size, dtype=np.int64)
    a = math.exp(-epsilon / sensitivity)
    # Difference of two geometrics with success probability (1 - a) is
    # two-sided geometric with parameter a.
    p = 1.0 - a
    shape = size if size is not None else 1
    g1 = gen.geometric(p, size=shape) - 1
    g2 = gen.geometric(p, size=shape) - 1
    noise = (g1 - g2).astype(np.int64)
    return int(noise[0]) if size is None else noise


@dataclass
class GeometricMechanism:
    """Object-style wrapper mirroring :class:`~repro.privacy.laplace.LaplaceMechanism`."""

    epsilon: float
    sensitivity: float = 1.0
    rng: RngLike = None

    def __post_init__(self) -> None:
        self._generator = ensure_rng(self.rng)
        if self.epsilon <= 0 or not math.isfinite(self.epsilon):
            raise InvalidBudgetError(f"epsilon must be positive, got {self.epsilon!r}")
        if self.sensitivity < 0 or not math.isfinite(self.sensitivity):
            raise SensitivityError(f"sensitivity must be non-negative, got {self.sensitivity!r}")

    def randomize(self, counts: np.ndarray) -> np.ndarray:
        """Return integer noisy counts."""
        counts = np.asarray(counts)
        if not np.issubdtype(counts.dtype, np.integer):
            raise TypeError(f"geometric mechanism protects integer counts, got {counts.dtype}")
        noise = two_sided_geometric_noise(
            self.sensitivity, self.epsilon, size=counts.shape, rng=self._generator
        )
        return counts + noise
