"""Random-number-generator plumbing shared by every randomized component.

The library never touches numpy's global random state.  Every randomized
function takes either a :class:`numpy.random.Generator`, an integer seed, or
``None`` (fresh OS entropy), and normalizes it through :func:`ensure_rng`.
Experiments derive independent child streams with :func:`spawn` so that, for
example, each cross-validation repetition sees its own reproducible stream
regardless of how many random draws earlier repetitions consumed.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

__all__ = [
    "RngLike",
    "STREAM_VERSIONS",
    "ensure_rng",
    "spawn",
    "derive_substream",
]

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

#: Supported stream-derivation formats (see :func:`derive_substream`).
STREAM_VERSIONS = (1, 2)

#: Domain separator appended (together with the tag length) by the
#: version-2 derivation.  The value is arbitrary but pinned: changing it
#: reshuffles every version-2 stream.
_V2_DOMAIN_WORD = 0x5D5EC0DE


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Normalize ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh entropy), an ``int`` seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged, so callers can thread one
        stream through a pipeline).

    Returns
    -------
    numpy.random.Generator
        A PCG64-backed generator.

    Raises
    ------
    TypeError
        If ``rng`` is of an unsupported type (e.g. the legacy
        ``numpy.random.RandomState``), to keep the library on one RNG API.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    raise TypeError(
        f"expected None, int, SeedSequence or numpy.random.Generator, "
        f"got {type(rng).__name__}"
    )


def spawn(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Child streams are derived through ``SeedSequence.spawn`` semantics: the
    parent generator's bit stream is used once to seed a ``SeedSequence``,
    whose children seed the returned generators.  Consuming draws from one
    child does not perturb its siblings, which keeps sweep points of an
    experiment independent of each other's draw counts.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    # 4 words of 32-bit entropy from the parent stream seed the sequence.
    entropy = parent.integers(0, 2**32, size=4, dtype=np.uint64)
    seq = np.random.SeedSequence(entropy.tolist())
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_substream(
    rng: RngLike,
    tag: Sequence[int] | int,
    stream_version: int = 1,
) -> np.random.Generator:
    """Derive a child generator keyed by ``tag``.

    Unlike :func:`spawn`, this does not consume draws from the parent when it
    is an integer seed: the same ``(seed, tag)`` pair always yields the same
    stream.  Used to give each (figure, panel, sweep-point, repetition) cell
    of an experiment a reproducible, addressable stream.

    ``stream_version`` selects the derivation format:

    ``1`` (default)
        The historical format: entropy is ``[seed, *tag]`` verbatim.  Every
        stream the harness has ever published uses it, so it stays the
        default indefinitely.
    ``2``
        Appends ``[len(tag), 0x5D5EC0DE]`` (tag length + a fixed domain
        separator) to the entropy, which removes the zero-padding alias
        described below: ``[a, b]`` and ``[a, b, 0]`` derive different
        entropy lists (``[s, a, b, 2, D]`` vs ``[s, a, b, 0, 3, D]``) and
        therefore independent streams.  Opting in reshuffles every stream,
        so it must be an explicit, recorded decision (the runtime plumbs it
        as ``stream_version=`` end to end).

    .. warning::
        Under version 1, ``numpy.random.SeedSequence`` zero-pads entropy to
        its 4-word pool, so a tag and the same tag extended by trailing
        zeros alias the same stream while the combined ``[seed, *tag]``
        list fits in the pool: ``derive_substream(s, [a, b])`` equals
        ``derive_substream(s, [a, b, 0])``.  Callers nesting namespaces
        (e.g. the harness's ``[key, rep]`` data stream vs ``[key, rep, 0]``
        fold-0 cell stream) inherit this aliasing; it is pinned by tests
        because changing the derivation would reshuffle every stream the
        harness has ever produced.  Version 2 is the fix, behind the
        explicit opt-in.
    """
    if stream_version not in STREAM_VERSIONS:
        raise ValueError(
            f"stream_version must be one of {STREAM_VERSIONS}, got {stream_version!r}"
        )
    if isinstance(tag, (int, np.integer)):
        tag = [int(tag)]
    tag_list = [int(t) for t in tag]
    if stream_version == 2:
        tag_list = [*tag_list, len(tag_list), _V2_DOMAIN_WORD]
    if isinstance(rng, (int, np.integer)):
        seq = np.random.SeedSequence([int(rng), *tag_list])
        return np.random.default_rng(seq)
    parent = ensure_rng(rng)
    entropy = parent.integers(0, 2**32, size=2, dtype=np.uint64)
    seq = np.random.SeedSequence([*entropy.tolist(), *tag_list])
    return np.random.default_rng(seq)


def _self_test() -> None:  # pragma: no cover - debugging helper
    a = derive_substream(7, [1, 2])
    b = derive_substream(7, [1, 2])
    assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)


if __name__ == "__main__":  # pragma: no cover
    _self_test()
