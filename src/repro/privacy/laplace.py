"""The Laplace mechanism (Dwork et al., TCC 2006) and distribution helpers.

This is the noise primitive underneath the Functional Mechanism: Algorithm 1
of the paper adds ``Lap(Delta / epsilon)`` noise to every polynomial
coefficient of the objective function, where ``Delta`` is the Lemma-1
sensitivity of the coefficient vector.

The module provides

* :func:`laplace_noise` / :func:`laplace_scale` — calibrated noise draws,
* :class:`LaplaceMechanism` — an object-style wrapper that also records its
  spend against a :class:`~repro.privacy.budget.PrivacyBudget`,
* density/CDF helpers used by the empirical privacy audit and by tests.

Neighborhood convention
-----------------------
Following the paper (Definition 3), two databases are *neighbors* when they
have the same cardinality and differ in exactly one tuple ("replace-one").
All sensitivities in this library use that convention; it is the origin of
the factor 2 in Lemma 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

import numpy as np

from ..exceptions import InvalidBudgetError, SensitivityError
from .rng import RngLike, ensure_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .budget import PrivacyBudget

__all__ = [
    "laplace_scale",
    "laplace_noise",
    "laplace_pdf",
    "laplace_logpdf",
    "laplace_cdf",
    "LaplaceMechanism",
]


def _validate_epsilon(epsilon: float) -> float:
    epsilon = float(epsilon)
    if not math.isfinite(epsilon) or epsilon <= 0.0:
        raise InvalidBudgetError(f"epsilon must be a positive finite number, got {epsilon!r}")
    return epsilon


def _validate_sensitivity(sensitivity: float) -> float:
    sensitivity = float(sensitivity)
    if not math.isfinite(sensitivity) or sensitivity < 0.0:
        raise SensitivityError(
            f"sensitivity must be a non-negative finite number, got {sensitivity!r}"
        )
    return sensitivity


def laplace_scale(sensitivity: float, epsilon: float) -> float:
    """Return the Laplace scale ``b = sensitivity / epsilon``.

    A query with L1 sensitivity ``S`` answered with ``Lap(S / epsilon)``
    noise on each output coordinate satisfies ``epsilon``-DP.
    """
    sensitivity = _validate_sensitivity(sensitivity)
    epsilon = _validate_epsilon(epsilon)
    return sensitivity / epsilon


def laplace_noise(
    sensitivity: float,
    epsilon: float,
    size: int | tuple[int, ...] | None = None,
    rng: RngLike = None,
) -> np.ndarray | float:
    """Draw calibrated Laplace noise.

    Parameters
    ----------
    sensitivity:
        L1 sensitivity of the query being protected.  A sensitivity of zero
        returns exact zeros (the query is data-independent).
    epsilon:
        Privacy budget spent on this release.
    size:
        Shape of the noise array; ``None`` returns a scalar.
    rng:
        Seed or generator (see :mod:`repro.privacy.rng`).
    """
    scale = laplace_scale(sensitivity, epsilon)
    gen = ensure_rng(rng)
    if scale == 0.0:
        return 0.0 if size is None else np.zeros(size, dtype=float)
    draw = gen.laplace(loc=0.0, scale=scale, size=size)
    return float(draw) if size is None else draw


def laplace_pdf(x: np.ndarray | float, scale: float) -> np.ndarray | float:
    """Density of the zero-mean Laplace distribution with scale ``scale``."""
    if scale <= 0.0:
        raise ValueError(f"scale must be positive, got {scale!r}")
    return np.exp(-np.abs(x) / scale) / (2.0 * scale)


def laplace_logpdf(x: np.ndarray | float, scale: float) -> np.ndarray | float:
    """Log-density of the zero-mean Laplace distribution."""
    if scale <= 0.0:
        raise ValueError(f"scale must be positive, got {scale!r}")
    return -np.abs(x) / scale - math.log(2.0 * scale)


def laplace_cdf(x: np.ndarray | float, scale: float) -> np.ndarray | float:
    """CDF of the zero-mean Laplace distribution."""
    if scale <= 0.0:
        raise ValueError(f"scale must be positive, got {scale!r}")
    x = np.asarray(x, dtype=float)
    out = np.where(x < 0, 0.5 * np.exp(x / scale), 1.0 - 0.5 * np.exp(-x / scale))
    return float(out) if out.ndim == 0 else out


@dataclass
class LaplaceMechanism:
    """The classic Laplace mechanism as a reusable object.

    Parameters
    ----------
    epsilon:
        Privacy budget spent *per invocation* of :meth:`randomize`.
    sensitivity:
        L1 sensitivity of the protected query.
    budget:
        Optional accountant; when given, every :meth:`randomize` call charges
        ``epsilon`` against it (and raises once the budget is exhausted).
    rng:
        Seed or generator used for the noise stream.

    Examples
    --------
    >>> mech = LaplaceMechanism(epsilon=1.0, sensitivity=2.0, rng=0)
    >>> noisy = mech.randomize(np.array([10.0, 20.0]))
    >>> noisy.shape
    (2,)
    """

    epsilon: float
    sensitivity: float
    budget: Optional["PrivacyBudget"] = None
    rng: RngLike = None
    _generator: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.epsilon = _validate_epsilon(self.epsilon)
        self.sensitivity = _validate_sensitivity(self.sensitivity)
        self._generator = ensure_rng(self.rng)

    @property
    def scale(self) -> float:
        """Noise scale ``b = sensitivity / epsilon``."""
        return self.sensitivity / self.epsilon

    @property
    def noise_std(self) -> float:
        """Standard deviation ``sqrt(2) * b`` of the injected noise.

        Section 6.1 of the paper sets the regularization constant to four
        times this value.
        """
        return math.sqrt(2.0) * self.scale

    def randomize(self, values: np.ndarray | float) -> np.ndarray | float:
        """Add calibrated noise to ``values`` and charge the budget."""
        if self.budget is not None:
            self.budget.spend(self.epsilon, note="LaplaceMechanism.randomize")
        arr = np.asarray(values, dtype=float)
        noise = laplace_noise(
            self.sensitivity, self.epsilon, size=arr.shape or None, rng=self._generator
        )
        out = arr + noise
        return float(out) if arr.ndim == 0 else out
