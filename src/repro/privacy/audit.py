"""Empirical differential-privacy auditing.

Theorem 1 proves that Algorithm 1 satisfies ``epsilon``-DP.  This module
provides the machinery to *measure* privacy loss empirically, which the test
suite uses as an end-to-end check on the implementation: run a mechanism many
times on two neighboring databases, discretize the outputs into common bins,
and report the largest observed log-probability ratio.  The estimate is a
statistical *lower bound* on the true ``epsilon`` — an implementation bug
that breaks the DP guarantee (e.g. noise scaled by ``Delta/(2 epsilon)``)
shows up as an estimate well above the nominal budget.

This is a "DP-Sniper"-style black-box check, kept deliberately simple: the
events compared are one-sided thresholds at pooled quantiles (cumulative
counts are statistically stable and attain the supremum for location-shift
mechanisms), with add-half smoothing so that disjoint supports register as
a large finite loss instead of being skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .rng import RngLike, ensure_rng

__all__ = ["PrivacyLossEstimate", "estimate_privacy_loss", "audit_mechanism"]


@dataclass(frozen=True)
class PrivacyLossEstimate:
    """Result of an empirical privacy audit.

    Attributes
    ----------
    epsilon_hat:
        Largest observed log-ratio between the two output distributions.
    nominal_epsilon:
        The budget the mechanism claims to satisfy.
    trials:
        Number of mechanism invocations per database.
    bins:
        Number of threshold events actually compared.
    """

    epsilon_hat: float
    nominal_epsilon: float
    trials: int
    bins: int

    @property
    def consistent(self) -> bool:
        """Whether the measurement is consistent with the nominal guarantee.

        Allows a statistical slack factor of 1.35 plus an absolute 0.15,
        which covers plug-in estimation error at the trial counts used in
        the test suite while still catching gross calibration bugs (which
        typically inflate the estimate by 2x or more).
        """
        return self.epsilon_hat <= 1.35 * self.nominal_epsilon + 0.15


def estimate_privacy_loss(
    samples_a: np.ndarray,
    samples_b: np.ndarray,
    num_bins: int = 200,
    min_count: int = 50,
) -> tuple[float, int]:
    """Estimate the max log-probability ratio between two scalar samples.

    The estimator compares *one-sided threshold events* ``{X >= t}`` and
    ``{X <= t}`` at pooled-quantile thresholds.  Cumulative counts are far
    more stable than per-bin counts (the DP guarantee must hold for every
    measurable event, and half-lines attain the supremum for the location-
    shifted noise distributions this library produces).  Probabilities are
    add-half smoothed, so disjoint supports — the signature of a mechanism
    that leaks deterministically — produce a large finite estimate instead
    of being silently skipped.

    Parameters
    ----------
    samples_a, samples_b:
        1-d arrays of mechanism outputs on the two neighboring databases.
    num_bins:
        Number of quantile thresholds examined.
    min_count:
        An event is considered only if at least one side has this many
        samples in it (both-sides-tiny events estimate nothing).

    Returns
    -------
    (epsilon_hat, events_used)
    """
    a = np.asarray(samples_a, dtype=float).ravel()
    b = np.asarray(samples_b, dtype=float).ravel()
    if a.size == 0 or b.size == 0:
        raise ValueError("both sample arrays must be non-empty")
    pooled = np.sort(np.concatenate([a, b]))
    if pooled[0] == pooled[-1]:  # constant mechanism output
        return 0.0, 1
    quantiles = np.linspace(0.0, 1.0, num_bins + 2)[1:-1]
    thresholds = np.unique(np.quantile(pooled, quantiles))
    a_sorted = np.sort(a)
    b_sorted = np.sort(b)
    # Counts of {X <= t} via binary search; {X >= t} follows by complement.
    le_a = np.searchsorted(a_sorted, thresholds, side="right")
    le_b = np.searchsorted(b_sorted, thresholds, side="right")
    ge_a = a.size - np.searchsorted(a_sorted, thresholds, side="left")
    ge_b = b.size - np.searchsorted(b_sorted, thresholds, side="left")

    best = 0.0
    events = 0
    for count_a, count_b in ((le_a, le_b), (ge_a, ge_b)):
        mask = np.maximum(count_a, count_b) >= min_count
        if not mask.any():
            continue
        p_a = (count_a[mask] + 0.5) / (a.size + 1.0)
        p_b = (count_b[mask] + 0.5) / (b.size + 1.0)
        ratios = np.abs(np.log(p_a) - np.log(p_b))
        best = max(best, float(ratios.max()))
        events += int(mask.sum())
    return best, events


def audit_mechanism(
    mechanism: Callable[[np.ndarray, np.random.Generator], float | np.ndarray],
    database_a: np.ndarray,
    database_b: np.ndarray,
    nominal_epsilon: float,
    trials: int = 20_000,
    num_bins: int = 200,
    output_index: int | None = None,
    rng: RngLike = None,
) -> PrivacyLossEstimate:
    """Run ``mechanism`` on two neighboring databases and audit the outputs.

    Parameters
    ----------
    mechanism:
        Callable ``(database, generator) -> scalar or vector output``.  The
        callable must be *stateless across calls* apart from the generator.
    database_a, database_b:
        Neighboring databases (same shape, one row differing) — the caller is
        responsible for the neighbor relation; the audit does not check it.
    nominal_epsilon:
        Claimed privacy budget of one mechanism invocation.
    trials:
        Invocations per database.  20k gives a usable estimate for
        ``epsilon <= 2`` with 40 bins.
    output_index:
        When the mechanism returns a vector, which coordinate to audit
        (``None`` audits the first coordinate).
    """
    gen = ensure_rng(rng)
    idx = 0 if output_index is None else int(output_index)

    def _collect(db: np.ndarray) -> np.ndarray:
        out = np.empty(trials, dtype=float)
        for i in range(trials):
            result = mechanism(db, gen)
            arr = np.atleast_1d(np.asarray(result, dtype=float))
            out[i] = arr[idx]
        return out

    samples_a = _collect(database_a)
    samples_b = _collect(database_b)
    epsilon_hat, bins_used = estimate_privacy_loss(samples_a, samples_b, num_bins=num_bins)
    return PrivacyLossEstimate(
        epsilon_hat=epsilon_hat,
        nominal_epsilon=float(nominal_epsilon),
        trials=trials,
        bins=bins_used,
    )
