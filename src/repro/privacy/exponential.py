"""The exponential mechanism (McSherry & Talwar, FOCS 2007).

Section 2 of the paper surveys the exponential mechanism as the standard
tool for queries with *discrete* output spaces.  The Functional Mechanism
does not use it directly, but two places in this reproduction do:

* the Filter-Priority baseline uses exponential-mechanism-style scoring in
  one of its variants, and
* the empirical privacy audit uses it as a known-good reference mechanism
  when validating the audit machinery itself.

Given candidates ``c_1..c_k`` with quality scores ``q_i`` whose sensitivity
(over neighboring databases) is ``S``, the mechanism samples candidate ``i``
with probability proportional to ``exp(epsilon * q_i / (2 S))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import InvalidBudgetError, SensitivityError
from .rng import RngLike, ensure_rng

__all__ = ["exponential_mechanism_probabilities", "ExponentialMechanism"]


def exponential_mechanism_probabilities(
    scores: Sequence[float] | np.ndarray,
    epsilon: float,
    sensitivity: float,
) -> np.ndarray:
    """Return the sampling distribution of the exponential mechanism.

    The computation is done in log-space (scores are shifted by their
    maximum) so that large ``epsilon * q / (2S)`` values do not overflow.
    """
    epsilon = float(epsilon)
    if not math.isfinite(epsilon) or epsilon <= 0.0:
        raise InvalidBudgetError(f"epsilon must be positive and finite, got {epsilon!r}")
    sensitivity = float(sensitivity)
    if not math.isfinite(sensitivity) or sensitivity <= 0.0:
        raise SensitivityError(f"score sensitivity must be positive, got {sensitivity!r}")
    scores_arr = np.asarray(scores, dtype=float)
    if scores_arr.ndim != 1 or scores_arr.size == 0:
        raise ValueError("scores must be a non-empty 1-d sequence")
    if not np.all(np.isfinite(scores_arr)):
        raise ValueError("scores must be finite")
    logits = (epsilon / (2.0 * sensitivity)) * scores_arr
    logits -= logits.max()
    weights = np.exp(logits)
    return weights / weights.sum()


@dataclass
class ExponentialMechanism:
    """Sample one of a finite set of candidates with EM probabilities.

    Parameters
    ----------
    epsilon:
        Budget spent per :meth:`select` call.
    sensitivity:
        Sensitivity of the quality score over neighboring databases.
    rng:
        Seed or generator for the selection draw.
    """

    epsilon: float
    sensitivity: float = 1.0
    rng: RngLike = None

    def __post_init__(self) -> None:
        self._generator = ensure_rng(self.rng)

    def probabilities(self, scores: Sequence[float] | np.ndarray) -> np.ndarray:
        """Expose the selection distribution (useful for tests/audits)."""
        return exponential_mechanism_probabilities(scores, self.epsilon, self.sensitivity)

    def select(self, scores: Sequence[float] | np.ndarray) -> int:
        """Return the index of the selected candidate."""
        probs = self.probabilities(scores)
        return int(self._generator.choice(len(probs), p=probs))
