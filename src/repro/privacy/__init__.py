"""Differential-privacy primitives: mechanisms, budget accounting, auditing.

This package is the substrate under the Functional Mechanism.  It contains
the Laplace mechanism (the noise source of Algorithm 1), the exponential and
geometric mechanisms (used by baselines and the audit), an ``epsilon``-budget
accountant with sequential/parallel composition, seeded RNG utilities, and an
empirical privacy auditor used by the test suite as an end-to-end guarantee
check.
"""

from .budget import BudgetLedgerEntry, PrivacyBudget
from .exponential import ExponentialMechanism, exponential_mechanism_probabilities
from .geometric import GeometricMechanism, two_sided_geometric_noise
from .laplace import (
    LaplaceMechanism,
    laplace_cdf,
    laplace_logpdf,
    laplace_noise,
    laplace_pdf,
    laplace_scale,
)
from .audit import PrivacyLossEstimate, audit_mechanism, estimate_privacy_loss
from .rng import RngLike, derive_substream, ensure_rng, spawn

__all__ = [
    "BudgetLedgerEntry",
    "PrivacyBudget",
    "ExponentialMechanism",
    "exponential_mechanism_probabilities",
    "GeometricMechanism",
    "two_sided_geometric_noise",
    "LaplaceMechanism",
    "laplace_cdf",
    "laplace_logpdf",
    "laplace_noise",
    "laplace_pdf",
    "laplace_scale",
    "PrivacyLossEstimate",
    "audit_mechanism",
    "estimate_privacy_loss",
    "RngLike",
    "derive_substream",
    "ensure_rng",
    "spawn",
]
