"""Privacy-budget accounting.

The paper works in pure ``epsilon``-DP (no delta), with the *replace-one*
neighborhood of Definition 3.  The accountant here tracks sequential
composition (budgets add up) and offers a scoped helper for parallel
composition (mechanisms on disjoint data partitions cost their maximum).

Most experiments in the paper run each algorithm once per (fold, repetition)
on disjoint privacy "lives" — the accountant exists so that library users who
chain mechanisms (e.g. DPME's histogram release followed by anything else)
get their total spend checked instead of silently over-spending.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import BudgetExhaustedError, InvalidBudgetError
from ..obs import active_recorder

__all__ = ["BudgetLedgerEntry", "PrivacyBudget"]


@dataclass(frozen=True)
class BudgetLedgerEntry:
    """A single recorded spend: how much, and by whom."""

    epsilon: float
    note: str


class PrivacyBudget:
    """A mutable ``epsilon``-DP budget with a spend ledger.

    Parameters
    ----------
    epsilon:
        Total budget available.  Must be positive and finite.

    Examples
    --------
    >>> budget = PrivacyBudget(1.0)
    >>> budget.spend(0.25, note="histogram release")
    >>> budget.remaining
    0.75
    >>> budget.spend(1.0)
    Traceback (most recent call last):
        ...
    repro.exceptions.BudgetExhaustedError: requested epsilon=1 exceeds remaining budget epsilon=0.75
    """

    #: Tolerance for floating-point accumulation when checking exhaustion.
    _SLACK = 1e-12

    def __init__(self, epsilon: float) -> None:
        epsilon = float(epsilon)
        if not math.isfinite(epsilon) or epsilon <= 0.0:
            raise InvalidBudgetError(
                f"total budget must be positive and finite, got {epsilon!r}"
            )
        self._total = epsilon
        self._ledger: list[BudgetLedgerEntry] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        """The budget this accountant started with."""
        return self._total

    @property
    def spent(self) -> float:
        """Sum of all recorded spends (sequential composition)."""
        return math.fsum(entry.epsilon for entry in self._ledger)

    @property
    def remaining(self) -> float:
        """Budget still available; never negative."""
        return max(0.0, self._total - self.spent)

    @property
    def ledger(self) -> tuple[BudgetLedgerEntry, ...]:
        """Immutable view of the spend history."""
        return tuple(self._ledger)

    def __repr__(self) -> str:
        return (
            f"PrivacyBudget(total={self._total:g}, spent={self.spent:g}, "
            f"entries={len(self._ledger)})"
        )

    # ------------------------------------------------------------------
    # Spending
    # ------------------------------------------------------------------
    def can_spend(self, epsilon: float) -> bool:
        """Whether ``epsilon`` more can be spent without exhausting the budget."""
        return float(epsilon) <= self.remaining + self._SLACK

    def spend(self, epsilon: float, note: str = "") -> None:
        """Record a spend of ``epsilon``, enforcing sequential composition.

        Raises
        ------
        InvalidBudgetError
            If ``epsilon`` is not a positive finite number.
        BudgetExhaustedError
            If the spend would exceed the remaining budget.
        """
        epsilon = float(epsilon)
        if not math.isfinite(epsilon) or epsilon <= 0.0:
            raise InvalidBudgetError(f"spend must be positive and finite, got {epsilon!r}")
        if not self.can_spend(epsilon):
            raise BudgetExhaustedError(requested=epsilon, remaining=self.remaining)
        self._ledger.append(BudgetLedgerEntry(epsilon=epsilon, note=note))
        recorder = active_recorder()
        if recorder.recording:
            recorder.counter("budget.spend_events")
            recorder.gauge("budget.epsilon_spent", self.spent)

    def split(self, fractions: list[float]) -> list["PrivacyBudget"]:
        """Carve the *remaining* budget into child budgets.

        The parent is charged immediately for the full remaining amount, so
        the children jointly cannot exceed what the parent had.  ``fractions``
        must be positive and sum to at most 1 (a strict-sum check would make
        innocuous uses like ``[0.5, 0.25]`` an error).
        """
        if not fractions:
            raise InvalidBudgetError("fractions must be non-empty")
        if any((not math.isfinite(f)) or f <= 0.0 for f in fractions):
            raise InvalidBudgetError(f"fractions must be positive, got {fractions!r}")
        if math.fsum(fractions) > 1.0 + self._SLACK:
            raise InvalidBudgetError(
                f"fractions sum to {math.fsum(fractions):g} > 1; children would "
                f"exceed the parent budget"
            )
        available = self.remaining
        if available <= 0.0:
            raise BudgetExhaustedError(requested=0.0, remaining=0.0)
        self.spend(available, note=f"split into {len(fractions)} children")
        return [PrivacyBudget(available * f) for f in fractions]

    @staticmethod
    def parallel_composition(spends: list[float]) -> float:
        """Cost of mechanisms applied to *disjoint* partitions of the data.

        Under parallel composition the total privacy loss is the maximum of
        the individual losses, not their sum.  This helper documents and
        centralizes that rule (used by the histogram baselines, whose cell
        counts partition the dataset — although note that with the paper's
        replace-one neighborhood a single replacement touches *two* cells,
        which is why those baselines use sensitivity 2 rather than relying
        on parallel composition alone).
        """
        if not spends:
            raise InvalidBudgetError("spends must be non-empty")
        if any((not math.isfinite(s)) or s <= 0.0 for s in spends):
            raise InvalidBudgetError(f"spends must be positive, got {spends!r}")
        return max(spends)
