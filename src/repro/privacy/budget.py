"""Privacy-budget accounting.

The paper works in pure ``epsilon``-DP (no delta), with the *replace-one*
neighborhood of Definition 3.  The accountant here tracks sequential
composition (budgets add up) and offers a scoped helper for parallel
composition (mechanisms on disjoint data partitions cost their maximum).

Most experiments in the paper run each algorithm once per (fold, repetition)
on disjoint privacy "lives" — the accountant exists so that library users who
chain mechanisms (e.g. DPME's histogram release followed by anything else)
get their total spend checked instead of silently over-spending.

Crash safety: an accountant constructed with ``journal_path=`` keeps a
write-ahead journal of its ledger.  Every spend writes an *intent* record
(flushed and fsynced) before mutating the ledger and a *commit* record
after, so a crash at any instant leaves a journal from which
:meth:`PrivacyBudget.restore` rebuilds a ledger that is **never behind**
reality: a committed spend replays as a normal entry, and an intent with
no commit replays as a spend too — conservatively, because the caller
might have released output before dying.  (The reverse error — counting a
release that was never journaled — cannot happen: ``spend`` returns only
after the commit record is durable, and the mechanism releases output
only after ``spend`` returns.)  For the Functional Mechanism this is the
difference between an availability bug and a privacy violation: an
under-recorded ledger silently re-sells epsilon that was already spent.
"""

from __future__ import annotations

import json
import math
import os
import threading
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import BudgetExhaustedError, InvalidBudgetError
from ..obs import active_recorder

__all__ = ["BudgetLedgerEntry", "PrivacyBudget"]

#: Journal file format version (the ``open`` record pins it).
_JOURNAL_VERSION = 1

#: Note suffix marking spends recovered from an uncommitted intent.
_RECOVERED_SUFFIX = " (recovered: uncommitted intent)"


@dataclass(frozen=True)
class BudgetLedgerEntry:
    """A single recorded spend: how much, and by whom."""

    epsilon: float
    note: str


class PrivacyBudget:
    """A mutable ``epsilon``-DP budget with a spend ledger.

    Parameters
    ----------
    epsilon:
        Total budget available.  Must be positive and finite.
    journal_path:
        Optional write-ahead journal file.  When given, every spend is
        made durable (intent + commit records, fsynced) before and after
        the in-memory ledger mutation; :meth:`restore` replays the file
        after a crash.  The file must not already contain records —
        constructing a *fresh* accountant over an existing journal would
        silently forget every recorded spend (a ledger reset), so that
        raises :class:`~repro.exceptions.InvalidBudgetError`; use
        :meth:`restore` to resume an existing journal.

    Examples
    --------
    >>> budget = PrivacyBudget(1.0)
    >>> budget.spend(0.25, note="histogram release")
    >>> budget.remaining
    0.75
    >>> budget.spend(1.0)
    Traceback (most recent call last):
        ...
    repro.exceptions.BudgetExhaustedError: requested epsilon=1 exceeds remaining budget epsilon=0.75
    """

    #: Absolute floor of the exhaustion tolerance (historical value).
    _SLACK = 1e-12

    def __init__(
        self,
        epsilon: float,
        journal_path: str | Path | None = None,
        *,
        _resume: bool = False,
    ) -> None:
        epsilon = float(epsilon)
        if not math.isfinite(epsilon) or epsilon <= 0.0:
            raise InvalidBudgetError(
                f"total budget must be positive and finite, got {epsilon!r}"
            )
        self._total = epsilon
        self._ledger: list[BudgetLedgerEntry] = []
        self._lock = threading.Lock()
        # Journal intent ids are never reused — not even when a spend dies
        # between intent and commit — or a replay could alias two spends.
        self._next_intent_id = 1
        self._journal_path = Path(journal_path) if journal_path is not None else None
        self._journal = None
        if self._journal_path is not None:
            fresh = (
                not self._journal_path.exists()
                or self._journal_path.stat().st_size == 0
            )
            if not fresh and not _resume:
                # Appending a second "open" epoch (or silently ignoring the
                # recorded history) would re-sell epsilon that was already
                # spent — the one failure a durable ledger exists to prevent.
                raise InvalidBudgetError(
                    f"budget journal {self._journal_path} already has records; "
                    f"use PrivacyBudget.restore() to resume it"
                )
            self._journal_path.parent.mkdir(parents=True, exist_ok=True)
            self._journal = open(self._journal_path, "a", encoding="utf-8")
            if fresh:
                self._journal_write(
                    {"op": "open", "total": self._total, "v": _JOURNAL_VERSION}
                )

    # ------------------------------------------------------------------
    # Write-ahead journal
    # ------------------------------------------------------------------
    @property
    def journal_path(self) -> Path | None:
        """The journal file, or ``None`` for a memory-only accountant."""
        return self._journal_path

    def _journal_write(self, record: dict) -> None:
        """Append one record durably: write, flush, fsync."""
        if self._journal is None:
            return
        self._journal.write(json.dumps(record, sort_keys=True) + "\n")
        self._journal.flush()
        os.fsync(self._journal.fileno())
        active_recorder().counter("budget.journal_records")

    def close(self) -> None:
        """Release the journal handle (the file itself stays)."""
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def __enter__(self) -> "PrivacyBudget":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @classmethod
    def restore(cls, journal_path: str | Path) -> "PrivacyBudget":
        """Rebuild an accountant by replaying its write-ahead journal.

        Replay is conservative by construction: a committed spend becomes
        a normal ledger entry, and an intent with **no** commit becomes a
        ledger entry too (noted as recovered) — the crash may have landed
        after the mechanism released output, so the epsilon must be
        treated as gone.  A torn *final* line is ignored: it can only
        belong to a ``spend`` call that never returned, so no output was
        released on its behalf (commits are durable before ``spend``
        returns).  A torn line anywhere *else* means real corruption and
        raises.  The restored accountant resumes journaling to the same
        file; recovered intents are closed with a ``recovered`` commit so
        a second replay agrees with the first.
        """
        path = Path(journal_path)
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise InvalidBudgetError(f"cannot read budget journal {path}: {exc}")
        lines = raw.split(b"\n")
        total: float | None = None
        # id -> (epsilon, note); committed ids move to the ledger in order.
        open_intents: dict[int, tuple[float, str]] = {}
        entries: list[tuple[int, float, str, bool]] = []  # (id, eps, note, recovered)
        for lineno, line in enumerate(lines):
            last = lineno == len(lines) - 1
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except (UnicodeDecodeError, json.JSONDecodeError):
                if last:  # torn tail: its spend never returned -> ignorable
                    break
                raise InvalidBudgetError(
                    f"budget journal {path} is corrupt at line {lineno + 1}"
                )
            op = record.get("op")
            if op == "open":
                if total is None:
                    total = float(record["total"])
            elif op == "intent":
                open_intents[int(record["id"])] = (
                    float(record["epsilon"]),
                    str(record.get("note", "")),
                )
            elif op == "commit":
                intent = open_intents.pop(int(record["id"]), None)
                if intent is not None:
                    epsilon, note = intent
                    if record.get("recovered", False):
                        note += _RECOVERED_SUFFIX
                    entries.append((int(record["id"]), epsilon, note))
            elif op == "note":
                # Durable zero-cost annotation (see annotate()): replays as
                # an epsilon=0 ledger entry so restored ledgers keep the
                # full decision history (e.g. parallel-covered partition
                # fits) without changing the spent total.
                entries.append((int(record["id"]), 0.0, str(record.get("note", ""))))
            else:
                raise InvalidBudgetError(
                    f"budget journal {path} has unknown record {op!r} "
                    f"at line {lineno + 1}"
                )
        if total is None:
            raise InvalidBudgetError(f"budget journal {path} has no open record")
        # Uncommitted intents: the crash window. Count them spent.
        recovered_ids = sorted(open_intents)
        for intent_id in recovered_ids:
            epsilon, note = open_intents[intent_id]
            entries.append((intent_id, epsilon, note + _RECOVERED_SUFFIX))
        entries.sort(key=lambda e: e[0])  # ledger order == intent order
        budget = cls(total, journal_path=path, _resume=True)
        for _, epsilon, note in entries:
            budget._ledger.append(BudgetLedgerEntry(epsilon=epsilon, note=note))
        budget._next_intent_id = max((e[0] for e in entries), default=0) + 1
        for intent_id in recovered_ids:  # make a second replay agree
            budget._journal_write({"op": "commit", "id": intent_id, "recovered": True})
        recorder = active_recorder()
        recorder.counter("budget.journal_replays")
        if recovered_ids:
            recorder.counter("budget.recovered_spends", len(recovered_ids))
        return budget

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        """The budget this accountant started with."""
        return self._total

    @property
    def spent(self) -> float:
        """Sum of all recorded spends (sequential composition)."""
        return math.fsum(entry.epsilon for entry in self._ledger)

    @property
    def remaining(self) -> float:
        """Budget still available; never negative."""
        return max(0.0, self._total - self.spent)

    @property
    def ledger(self) -> tuple[BudgetLedgerEntry, ...]:
        """Immutable view of the spend history."""
        return tuple(self._ledger)

    def __repr__(self) -> str:
        return (
            f"PrivacyBudget(total={self._total:g}, spent={self.spent:g}, "
            f"entries={len(self._ledger)})"
        )

    # ------------------------------------------------------------------
    # Spending
    # ------------------------------------------------------------------
    @property
    def _slack(self) -> float:
        """Exhaustion tolerance: relative to the total, floored at 1e-12.

        A fixed absolute slack mishandles both ends of the scale: with a
        large total (say ``1e6``), seven spends of ``total/7`` accumulate
        rounding error around ``ulp(total) ~ 1.2e-10`` and the legitimate
        final spend is refused by a hair; with a tiny total the absolute
        slack is enormously permissive instead.  Scaling with
        ``ulp(total)`` keeps the tolerance at "a few representable steps"
        of the actual budget magnitude (the 1e-12 floor preserves the
        historical behaviour for totals near 1).
        """
        return max(self._SLACK, 16.0 * math.ulp(self._total))

    def can_spend(self, epsilon: float) -> bool:
        """Whether ``epsilon`` more can be spent without exhausting the budget.

        The comparison allows a relative tolerance (see :attr:`_slack`)
        so floating-point drift from repeated spends cannot refuse a
        final spend the exact arithmetic would admit.
        """
        return float(epsilon) <= self.remaining + self._slack

    def spend(self, epsilon: float, note: str = "") -> None:
        """Record a spend of ``epsilon``, enforcing sequential composition.

        With a journal attached the spend is durable: an *intent* record
        is fsynced before the ledger mutates and a *commit* record after,
        so :meth:`restore` can never observe less spent than a caller may
        have acted on.  (The ``budget.crash`` fault site sits between the
        two records — exactly the window the journal exists to cover.)

        Raises
        ------
        InvalidBudgetError
            If ``epsilon`` is not a positive finite number.
        BudgetExhaustedError
            If the spend would exceed the remaining budget.
        """
        from ..faults import active_injector  # deferred: avoids an import cycle

        epsilon = float(epsilon)
        if not math.isfinite(epsilon) or epsilon <= 0.0:
            raise InvalidBudgetError(f"spend must be positive and finite, got {epsilon!r}")
        with self._lock:
            if not self.can_spend(epsilon):
                raise BudgetExhaustedError(requested=epsilon, remaining=self.remaining)
            intent_id = self._next_intent_id
            self._next_intent_id += 1
            self._journal_write(
                {"op": "intent", "id": intent_id, "epsilon": epsilon, "note": note}
            )
            injector = active_injector()
            if injector.consume("budget.crash", intent_id):
                from ..exceptions import InjectedFaultError

                raise InjectedFaultError("budget.crash", intent_id, 0)
            self._ledger.append(BudgetLedgerEntry(epsilon=epsilon, note=note))
            self._journal_write({"op": "commit", "id": intent_id})
        recorder = active_recorder()
        if recorder.recording:
            recorder.counter("budget.spend_events")
            recorder.gauge("budget.epsilon_spent", self.spent)

    def annotate(self, note: str) -> None:
        """Record a durable zero-cost ledger annotation.

        Parallel composition means some releases legitimately cost
        nothing *extra* (a partition fit already covered by the running
        maximum), yet the decision to charge nothing must survive a
        crash just like a spend does — otherwise a restored ledger
        cannot re-derive the per-partition maxima it charged against.
        A ``note`` record is a single durable journal line (no
        intent/commit pair: there is no ledger mutation to crash
        between) and an ``epsilon=0`` ledger entry, neutral to
        :attr:`spent`.
        """
        with self._lock:
            note_id = self._next_intent_id
            self._next_intent_id += 1
            self._journal_write({"op": "note", "id": note_id, "note": note})
            self._ledger.append(BudgetLedgerEntry(epsilon=0.0, note=note))

    def split(self, fractions: list[float]) -> list["PrivacyBudget"]:
        """Carve the *remaining* budget into child budgets.

        The parent is charged immediately for the full remaining amount, so
        the children jointly cannot exceed what the parent had.  ``fractions``
        must be positive and sum to at most 1 (a strict-sum check would make
        innocuous uses like ``[0.5, 0.25]`` an error).
        """
        if not fractions:
            raise InvalidBudgetError("fractions must be non-empty")
        if any((not math.isfinite(f)) or f <= 0.0 for f in fractions):
            raise InvalidBudgetError(f"fractions must be positive, got {fractions!r}")
        if math.fsum(fractions) > 1.0 + self._SLACK:
            raise InvalidBudgetError(
                f"fractions sum to {math.fsum(fractions):g} > 1; children would "
                f"exceed the parent budget"
            )
        available = self.remaining
        if available <= 0.0:
            raise BudgetExhaustedError(requested=0.0, remaining=0.0)
        self.spend(available, note=f"split into {len(fractions)} children")
        return [PrivacyBudget(available * f) for f in fractions]

    @staticmethod
    def parallel_composition(spends: list[float]) -> float:
        """Cost of mechanisms applied to *disjoint* partitions of the data.

        Under parallel composition the total privacy loss is the maximum of
        the individual losses, not their sum.  This helper documents and
        centralizes that rule (used by the histogram baselines, whose cell
        counts partition the dataset — although note that with the paper's
        replace-one neighborhood a single replacement touches *two* cells,
        which is why those baselines use sensitivity 2 rather than relying
        on parallel composition alone).
        """
        if not spends:
            raise InvalidBudgetError("spends must be non-empty")
        if any((not math.isfinite(s)) or s <= 0.0 for s in spends):
            raise InvalidBudgetError(f"spends must be positive, got {spends!r}")
        return max(spends)
