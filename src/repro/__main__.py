"""``python -m repro`` — regenerate the paper's experiments from the shell.

See :mod:`repro.experiments.cli` for the command reference.
"""

import sys

from .experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
