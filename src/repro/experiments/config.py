"""Experimental configuration: Table 2 and scale presets.

Table 2 of the paper:

    =============================== ======================================
    Parameter                       Range (default in bold)
    =============================== ======================================
    Data subset sampling rate       0.1 ... 0.9, **1.0**
    Dataset dimensionality          5, 8, 11, **14**
    Privacy budget epsilon          3.2, 1.6, **0.8**, 0.4, 0.2, 0.1
    =============================== ======================================

(The paper prints defaults in bold without naming them; 1.0 / 14 / 0.8 are
the values its per-figure captions hold fixed.)

Because the full protocol — 5-fold cross-validation averaged over 50 runs on
370k records, per sweep point, per algorithm, per panel — is a multi-hour
Matlab-era computation, the harness exposes three presets:

* ``SMOKE`` — seconds; used by the test suite.
* ``DEFAULT`` — minutes for the whole bench suite; used by
  ``pytest benchmarks/``.  Record counts are subsampled and repetitions
  reduced; EXPERIMENTS.md reports results at this scale.
* ``FULL`` — the paper's protocol (370k/190k records, 5x50 runs).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ExperimentError

__all__ = [
    "SAMPLING_RATES",
    "DIMENSIONALITIES",
    "PRIVACY_BUDGETS",
    "DEFAULT_SAMPLING_RATE",
    "DEFAULT_DIMENSIONALITY",
    "DEFAULT_EPSILON",
    "LINEAR_ALGORITHMS",
    "LOGISTIC_ALGORITHMS",
    "ScalePreset",
    "SMOKE",
    "DEFAULT",
    "FULL",
    "PRESETS",
    "preset_by_name",
]

#: Table 2 parameter ranges.
SAMPLING_RATES: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
DIMENSIONALITIES: tuple[int, ...] = (5, 8, 11, 14)
PRIVACY_BUDGETS: tuple[float, ...] = (3.2, 1.6, 0.8, 0.4, 0.2, 0.1)

#: Table 2 defaults (bold in the paper).
DEFAULT_SAMPLING_RATE = 1.0
DEFAULT_DIMENSIONALITY = 14
DEFAULT_EPSILON = 0.8

#: Algorithms per panel, in the paper's legend order.  Truncated appears
#: only in the logistic panels ("We omit Truncated in the figures, as our
#: approximation approach ... is required only for logistic regression").
LINEAR_ALGORITHMS: tuple[str, ...] = ("FM", "DPME", "FP", "NoPrivacy")
LOGISTIC_ALGORITHMS: tuple[str, ...] = ("FM", "DPME", "FP", "NoPrivacy", "Truncated")


@dataclass(frozen=True)
class ScalePreset:
    """How much compute an experiment run spends.

    Attributes
    ----------
    name:
        Preset label recorded in reports.
    max_records:
        Cap on dataset cardinality at sampling rate 1.0 (``None`` = the
        paper's full 370k/190k).  Sweep rates scale off this cap.
    folds:
        Cross-validation folds (paper: 5).
    repetitions:
        Independent repetitions of the whole CV (paper: 50).
    """

    name: str
    max_records: int | None
    folds: int
    repetitions: int

    def __post_init__(self) -> None:
        if self.folds < 2:
            raise ExperimentError(f"folds must be >= 2, got {self.folds}")
        if self.repetitions < 1:
            raise ExperimentError(f"repetitions must be >= 1, got {self.repetitions}")
        if self.max_records is not None and self.max_records < self.folds:
            raise ExperimentError(
                f"max_records={self.max_records} cannot be below folds={self.folds}"
            )

    def cardinality(self, available: int) -> int:
        """Records used at sampling rate 1.0 given ``available`` rows."""
        if self.max_records is None:
            return available
        return min(available, self.max_records)


def preset_by_name(name: str) -> ScalePreset:
    """Resolve a scale-preset name (the registry behind policy ``scale``)."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scale preset {name!r}; expected one of {sorted(PRESETS)}"
        ) from None


SMOKE = ScalePreset(name="smoke", max_records=4_000, folds=3, repetitions=1)
# FM's advantage over the histogram baselines opens up above ~90k records
# (its coefficient signal grows with n while the injected noise is constant
# — Theorem 2), so the bench preset sits comfortably above that crossover
# while keeping the whole suite in the tens of minutes.
DEFAULT = ScalePreset(name="default", max_records=200_000, folds=5, repetitions=2)
FULL = ScalePreset(name="full", max_records=None, folds=5, repetitions=50)

#: The named scale presets an :class:`~repro.session.ExecutionPolicy` (and
#: the CLI ``--scale`` flag) can select.  Call sites may still pass any
#: custom :class:`ScalePreset` instance explicitly.
PRESETS: dict[str, ScalePreset] = {"smoke": SMOKE, "default": DEFAULT, "full": FULL}
