"""Rendering experiment results as the paper's rows and series.

The original figures are line plots; in a terminal reproduction the
equivalent artifact is an aligned table with one row per sweep value and one
column per algorithm, plus a panel header naming the figure.  These tables
are what the benchmark suite prints and what EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Sequence

from .figures import ObjectiveCurve, SweepResult

__all__ = [
    "format_sweep_table",
    "format_time_table",
    "format_objective_curve",
    "format_engine_table",
    "summarize_ordering",
]

_PARAM_LABEL = {
    "dimensionality": "dimensionality",
    "sampling_rate": "sampling rate",
    "epsilon": "privacy budget eps",
}


def _metric_label(task: str) -> str:
    return "mean square error" if task == "linear" else "misclassification rate"


def _render_table(
    title: str,
    row_label: str,
    values: Sequence,
    columns: dict[str, Sequence[float]],
    value_format: str = "{:.4f}",
) -> str:
    names = list(columns)
    width = max(12, max(len(n) for n in names) + 2)
    header = f"{row_label:>16} " + "".join(f"{n:>{width}}" for n in names)
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for i, v in enumerate(values):
        v_str = f"{v:g}" if isinstance(v, float) else str(v)
        cells = "".join(
            f"{value_format.format(columns[n][i]):>{width}}" for n in names
        )
        lines.append(f"{v_str:>16} " + cells)
    lines.append("=" * len(header))
    return "\n".join(lines)


def format_sweep_table(result: SweepResult) -> str:
    """Accuracy view of a sweep panel (Figures 4-6)."""
    title = (
        f"{result.figure} / {result.panel}: {_metric_label(result.task)} "
        f"vs {_PARAM_LABEL[result.parameter]}"
    )
    columns = {name: result.metric_series(name) for name in result.series}
    return _render_table(title, _PARAM_LABEL[result.parameter], result.values, columns)


def format_time_table(result: SweepResult) -> str:
    """Timing view of a sweep panel (Figures 7-9)."""
    title = (
        f"{result.figure} / {result.panel}: computation time (seconds) "
        f"vs {_PARAM_LABEL[result.parameter]}"
    )
    columns = {name: result.time_series(name) for name in result.series}
    return _render_table(
        title, _PARAM_LABEL[result.parameter], result.values, columns,
        value_format="{:.4g}",
    )


def format_engine_table(
    task: str,
    epsilons: Sequence[float],
    scores: Sequence[float],
    norms: Sequence[float],
    solve_seconds: Sequence[float],
    stds: Sequence[float] | None = None,
    header_lines: Sequence[str] = (),
) -> str:
    """Render one ``repro engine`` sweep: metric, norm and solve time per eps.

    The metric is evaluated in-sample (a diagnostic of the release, not the
    paper's held-out protocol — that lives in the harness).  ``stds``, when
    given, holds the repeated-draw mean coefficient standard deviation from
    :meth:`repro.engine.EpsilonSweepEngine.variance_estimate`.
    """
    title = f"engine sweep: {_metric_label(task)} (in-sample) vs privacy budget eps"
    columns: dict[str, Sequence[float]] = {
        _metric_label(task).split()[-1]: scores,
        "||omega||": norms,
        "solve sec": solve_seconds,
    }
    if stds is not None:
        columns["coef std"] = stds
    table = _render_table(
        title, "privacy budget eps", list(epsilons), columns, value_format="{:.4g}"
    )
    if header_lines:
        return "\n".join([*header_lines, table])
    return table


def format_objective_curve(curve: ObjectiveCurve, labels: tuple[str, str]) -> str:
    """Compact rendering of a Figure-2/3 curve pair: coefficients + minima."""
    lines = []
    if curve.exact_coefficients:
        a, b, c = curve.exact_coefficients
        lines.append(f"{labels[0]}: {a:.4g} w^2 + {b:.4g} w + {c:.4g}")
    else:
        lines.append(f"{labels[0]}: (non-polynomial objective)")
    a, b, c = curve.perturbed_coefficients
    lines.append(f"{labels[1]}: {a:.4g} w^2 + {b:.4g} w + {c:.4g}")
    lines.append(
        f"argmin over grid: {labels[0]} -> {curve.minimizers[0]:.4f}, "
        f"{labels[1]} -> {curve.minimizers[1]:.4f}"
    )
    max_gap = float(abs(curve.exact - curve.perturbed).max())
    lines.append(f"max |difference| on grid: {max_gap:.4f}")
    return "\n".join(lines)


def summarize_ordering(result: SweepResult) -> dict[str, bool]:
    """Check the paper's headline orderings on a sweep panel.

    Returns flags used by benches/tests to assert reproduction quality:

    ``fm_beats_dpme`` / ``fm_beats_fp``
        FM's mean metric is no worse than the synthetic-data baselines,
        averaged over the sweep.
    ``noprivacy_best``
        NoPrivacy's average metric is the lowest of all algorithms.
    """
    averages = {
        name: sum(result.metric_series(name)) / len(result.values)
        for name in result.series
    }
    flags: dict[str, bool] = {}
    if "FM" in averages and "DPME" in averages:
        flags["fm_beats_dpme"] = averages["FM"] <= averages["DPME"] * 1.02
    if "FM" in averages and "FP" in averages:
        flags["fm_beats_fp"] = averages["FM"] <= averages["FP"] * 1.02
    if "NoPrivacy" in averages:
        flags["noprivacy_best"] = all(
            averages["NoPrivacy"] <= v * 1.02 for v in averages.values()
        )
    return flags
