"""Command-line interface for regenerating the paper's experiments.

Usage (installed package)::

    python -m repro figure2
    python -m repro figure4 --country us --task linear --scale smoke
    python -m repro figure6 --country brazil --task logistic --scale default
    python -m repro figure7 --country us --scale smoke
    python -m repro figure6 --runtime percell --executor thread
    python -m repro convergence --task linear
    python -m repro table2
    python -m repro engine --task linear --epsilons 0.1,1,10 --shards 4
    python -m repro figure5 --trace figure5.jsonl
    python -m repro trace summarize figure5.jsonl
    python -m repro verify --tier 1
    python -m repro verify --tier 2 --epsilon 1.0
    python -m repro verify --tier 3 --regen-golden
    python -m repro serve --data-dir /var/lib/repro --port 8321
    python -m repro federated --parties 3 --noise-mode central --block-size 256
    python -m repro federated --centralized --block-size 256

``federated`` simulates a K-party federation (:mod:`repro.federated`):
each party ingests its block-aligned row slice locally (as a real OS
process under the default ``--executor process``), serializes a
versioned, checksummed wire envelope, and the coordinator validates,
tree-merges, and fits.  Both invocations above print a ``digest=`` line
over the released coefficients; in ``central`` noise mode the two
digests are bitwise identical — the federation's no-local-noise contract.
Corrupt/mismatched envelopes are rejected with typed errors (exit 3)
before any coordinator state changes.

``serve`` boots the long-lived multi-tenant DP serving layer
(:mod:`repro.serve`): tenants stream rows and request budgeted fits over
HTTP, with durable per-tenant budget ledgers, bounded admission queues,
and periodic crash-safe snapshots.  Execution flags (``--executor``,
``--failure-mode``, ``--faults``, ...) configure the service's session
exactly as they configure a figure run.

Accuracy figures print the paper-style sweep table; timing figures print the
per-algorithm fit times; ``figure2``/``figure3`` print the worked examples.
``engine`` streams the dataset through the :mod:`repro.engine` sufficient-
statistics accumulator (optionally sharded and cached via ``--cache-dir``)
and refits the Functional Mechanism at every requested budget from that one
pass.  The ``--scale`` presets trade fidelity for time (see
:mod:`repro.experiments.config`).

Execution configuration flows through one resolver
(:meth:`repro.session.ExecutionPolicy.resolve`): explicit flags beat
``REPRO_*`` environment variables, which beat a ``REPRO_POLICY_FILE``
JSON file, which beats the defaults — so ``REPRO_EXECUTOR=thread
REPRO_TILE_SIZE=1 python -m repro figure5`` configures a run without any
flags.  The sweep figures' knobs (see :mod:`repro.runtime`):
``--runtime batched`` (default) executes every batchable (rep, fold,
epsilon) cell through stacked LAPACK kernels, while ``--runtime percell``
forces the per-cell reference path — both produce bitwise-identical scores,
so the choice only trades wall-clock for auditability.  ``--executor
serial|thread|process`` selects where parallel work runs (the residual
non-batchable baseline cells, and whole batched tiles under tiling), with
``--max-workers`` bounding the pool.  ``--tile-size`` bounds peak memory
by materializing at most that many repetitions' prepared arrays at a
time, and ``--stream-version 2`` opts into the alias-free substream
derivation — both leave scores bitwise unchanged except that stream
version 2 deliberately reshuffles all noise.

Observability (:mod:`repro.obs`): ``--telemetry summary|trace`` turns on
the run's recorder (default off — a single null-check per instrumented
site), ``--trace PATH`` writes the recorded spans/counters as JSONL
(implying ``--telemetry trace`` unless a level was given), and ``python
-m repro trace summarize PATH`` validates a trace file against the
schema and renders its aggregate tables.  Telemetry never changes
scores: the golden matrix digests are asserted identical at every level.

``verify`` runs the :mod:`repro.verify` conformance subsystem: ``--tier 1``
is the fast gate (sensitivity certificates, auditor teeth, golden-store
sanity), ``--tier 2`` statistically audits FM and every privacy-claiming
baseline with certified lower bounds on the measured privacy loss, and
``--tier 3`` checks the golden-oracle digest matrix across every runtime/
executor/tiling/stream-version combination.
"""

from __future__ import annotations

import argparse
import dataclasses
import math
import sys
from typing import Sequence

import numpy as np

from ..analysis.convergence import convergence_study
from ..data import load_brazil, load_us
from ..engine import AccumulatorCache, EpsilonSweepEngine, ShardedAccumulator
from ..exceptions import ExperimentError, FederatedError, ReproError
from ..obs import load_trace, make_recorder, summarize_trace, use_recorder
from ..privacy.rng import derive_substream
from ..session import ExecutionPolicy, Session, figure_spec
from ..verify.cli import add_verify_arguments, run_verify
from .config import DEFAULT_DIMENSIONALITY, PRESETS
from .harness import objective_for, score_from_scores
from .figures import (
    figure2_objective_example,
    figure3_approximation_example,
)
from .reporting import (
    format_engine_table,
    format_objective_curve,
    format_sweep_table,
    format_time_table,
    summarize_ordering,
)

__all__ = ["main", "build_parser"]

_PRESETS = PRESETS

_SWEEP_FIGURES = ("figure4", "figure5", "figure6", "figure7", "figure8", "figure9")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate experiments from 'Functional Mechanism' (VLDB 2012).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table2", help="print the Table-2 parameter grid")

    fig2 = sub.add_parser("figure2", help="linear objective vs FM-noisy version")
    fig2.add_argument("--epsilon", type=float, default=1.0)
    fig2.add_argument("--seed", type=int, default=0)

    sub.add_parser("figure3", help="logistic objective vs degree-2 approximation")

    # Flag defaults are None so absent flags fall through the policy
    # resolver's lower layers (REPRO_* environment variables, then the
    # REPRO_POLICY_FILE file, then the CLI's base defaults).
    def add_runtime_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--runtime", choices=("batched", "percell"), default=None,
            help="cell execution path: 'batched' (default) stacks all "
            "closed-form (rep, fold, epsilon) solves into one LAPACK call "
            "and iterates logistic cells through the masked batched Newton; "
            "'percell' is the reference loop. Scores are bitwise identical "
            "either way.",
        )
        p.add_argument(
            "--executor", choices=("serial", "thread", "process"), default=None,
            help="where parallel work runs (default serial): per-cell work "
            "(the non-batchable baselines, or everything under --runtime "
            "percell), and whole batched tiles when --tile-size yields more "
            "than one tile",
        )
        p.add_argument(
            "--max-workers", type=int, default=None, metavar="N",
            help="thread/process pool width (default: the executor's own)",
        )
        p.add_argument(
            "--tile-size", type=int, default=None, metavar="REPS",
            help="bound resident memory by materializing at most REPS "
            "repetitions' prepared arrays at a time (1 = the historical "
            "one-rep-at-a-time profile; default: all repetitions at once). "
            "Scores are bitwise identical at every tiling.",
        )
        p.add_argument(
            "--stream-version", type=int, choices=(1, 2), default=None,
            help="substream derivation format: 2 (default) is the alias-free "
            "SeedSequence derivation; 1 reproduces the historical streams "
            "(pinned and tested via the *-sv1 golden groups)",
        )
        p.add_argument(
            "--telemetry", choices=("off", "summary", "trace"), default=None,
            help="observability level (default off): 'summary' keeps "
            "aggregate span/counter statistics, 'trace' additionally "
            "retains every span event. Never changes scores.",
        )
        p.add_argument(
            "--trace", default=None, metavar="PATH",
            help="write the run's telemetry as JSONL to PATH (implies "
            "--telemetry trace unless a level is given); inspect with "
            "`python -m repro trace summarize PATH`",
        )
        p.add_argument(
            "--faults", default=None, metavar="PLAN",
            help="deterministic fault-injection plan (chaos testing), e.g. "
            "'seed=7;worker.crash=0.5x2'. Recovery leaves scores bitwise "
            "unchanged; default: no injection.",
        )
        p.add_argument(
            "--max-retries", type=int, default=None, metavar="N",
            help="self-healing bound: zero-progress retry rounds the process "
            "executors tolerate before giving up (default 2; 0 disables)",
        )
        p.add_argument(
            "--tile-timeout", type=float, default=None, metavar="SECONDS",
            help="per-tile timeout for process executors; an overdue tile is "
            "treated as a hung worker, the pool rebuilt and the tile "
            "retried (default: no timeout)",
        )
        p.add_argument(
            "--failure-mode", choices=("raise", "fallback"), default=None,
            help="after retry exhaustion: 'raise' (default) propagates the "
            "executor error; 'fallback' degrades process -> thread -> "
            "serial, resuming from completed tiles",
        )
        p.add_argument(
            "--backend", choices=("numpy", "torch"), default=None,
            help="array backend for the stacked linear algebra (default "
            "numpy, the bit-identity reference). 'torch' (optional extra; "
            "CUDA when available) is certified numerically conforming by "
            "`python -m repro verify --tier numeric`. Noise is always drawn "
            "by the keyed numpy substreams, so privacy calibration is "
            "backend-invariant.",
        )

    for name, help_text in [
        ("figure4", "accuracy vs dimensionality"),
        ("figure5", "accuracy vs cardinality"),
        ("figure6", "accuracy vs privacy budget"),
    ]:
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--country", choices=("us", "brazil"), default="us")
        p.add_argument("--task", choices=("linear", "logistic"), default="linear")
        p.add_argument("--scale", choices=sorted(_PRESETS), default=None,
                       help="compute preset (default: smoke)")
        p.add_argument("--seed", type=int, default=None,
                       help="base seed (default: 0)")
        add_runtime_arguments(p)

    for name, help_text in [
        ("figure7", "computation time vs dimensionality (logistic)"),
        ("figure8", "computation time vs cardinality (logistic)"),
        ("figure9", "computation time vs privacy budget (logistic)"),
    ]:
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--country", choices=("us", "brazil"), default="us")
        p.add_argument("--scale", choices=sorted(_PRESETS), default=None,
                       help="compute preset (default: smoke)")
        p.add_argument("--seed", type=int, default=None,
                       help="base seed (default: 0)")
        add_runtime_arguments(p)

    conv = sub.add_parser("convergence", help="Theorem-2 convergence study")
    conv.add_argument("--task", choices=("linear", "logistic"), default="linear")
    conv.add_argument("--epsilon", type=float, default=1.0)

    eng = sub.add_parser(
        "engine",
        help="one-pass multi-epsilon FM fits from streamed sufficient statistics",
    )
    eng.add_argument("--task", choices=("linear", "logistic"), default="linear")
    eng.add_argument(
        "--epsilons", default="0.1,0.2,0.4,0.8,1.6,3.2",
        help="comma-separated privacy budgets (default: the Table-2 range)",
    )
    eng.add_argument("--shards", type=int, default=1, help="parallel ingestion shards")
    eng.add_argument("--country", choices=("us", "brazil"), default="us")
    eng.add_argument("--dims", type=int, default=DEFAULT_DIMENSIONALITY)
    eng.add_argument("--scale", choices=sorted(_PRESETS), default="smoke")
    eng.add_argument("--seed", type=int, default=0)
    eng.add_argument(
        "--repeats", type=int, default=1,
        help="independent draws per epsilon for error bars (1 = no error bars)",
    )
    eng.add_argument(
        "--cache-dir", default=None,
        help="content-addressed accumulator cache directory (skips the data "
        "pass when the same dataset/objective was accumulated before)",
    )
    eng.add_argument(
        "--telemetry", choices=("off", "summary", "trace"), default=None,
        help="observability level for the engine pass (default off)",
    )
    eng.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write the engine run's telemetry as JSONL to PATH (implies "
        "--telemetry trace unless a level is given)",
    )

    verify = sub.add_parser(
        "verify",
        help="tiered DP-conformance and golden-oracle verification",
    )
    add_verify_arguments(verify)

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant DP serving layer (HTTP, durable ledgers)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8321,
        help="listen port (0 picks a free one; see --port-file)",
    )
    serve.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound port here once listening (for --port 0)",
    )
    serve.add_argument(
        "--data-dir", required=True, metavar="DIR",
        help="durable tenant state root: budget journals, snapshots, metadata",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="concurrent request executions (default 8)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=32, metavar="N",
        help="bounded admission queue depth; beyond it requests are shed "
        "with a retryable 503 (default 32)",
    )
    serve.add_argument(
        "--snapshot-interval", type=float, default=5.0, metavar="SECONDS",
        help="periodic durable tenant snapshot cadence (0 disables; default 5)",
    )
    serve.add_argument(
        "--max-resident-tenants", type=int, default=None, metavar="N",
        help="LRU cap on in-memory tenants; the least recently touched are "
        "snapshotted to disk and transparently reloaded on next touch "
        "(default: unbounded)",
    )
    serve.add_argument(
        "--tenant-idle-ttl", type=float, default=None, metavar="SECONDS",
        help="evict tenants idle this long at each snapshot cycle, after a "
        "forced snapshot (default: never)",
    )
    add_runtime_arguments(serve)

    fed = sub.add_parser(
        "federated",
        help="K-party federated aggregation: local ingestion, wire "
        "envelopes, coordinator merge + fit",
    )
    fed.add_argument("--task", choices=("linear", "logistic"), default="linear")
    fed.add_argument(
        "--epsilons", default="0.1,0.2,0.4,0.8,1.6,3.2",
        help="comma-separated privacy budgets (default: the Table-2 range)",
    )
    fed.add_argument("--country", choices=("us", "brazil"), default="us")
    fed.add_argument("--dims", type=int, default=DEFAULT_DIMENSIONALITY)
    fed.add_argument("--scale", choices=sorted(_PRESETS), default="smoke")
    fed.add_argument("--seed", type=int, default=0)
    fed.add_argument(
        "--parties", type=int, default=3,
        help="number of federation parties (default 3)",
    )
    fed.add_argument(
        "--noise-mode", choices=("central", "share", "party"), default="central",
        help="central: coordinator draws the calibrated noise (bitwise "
        "identical to a single-box fit); share: parties ship mod-2^64 "
        "additive shares that reconstruct the central draw bit-exactly; "
        "party: only locally perturbed coefficients leave a party",
    )
    fed.add_argument(
        "--block-size", type=int, default=None, metavar="ROWS",
        help="accumulator block size; party splits are aligned to it "
        "(default: the accumulator default; pick it small enough that "
        "every party gets rows at smoke scales)",
    )
    fed.add_argument(
        "--tree", choices=("sequential", "balanced"), default="balanced",
        help="deterministic merge-tree shape (both are bit-identical)",
    )
    fed.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="write each party's envelope to DIR/party-<k>.fenv and "
        "coordinate from the files (default: in-memory hand-off)",
    )
    fed.add_argument(
        "--submit", nargs="+", default=None, metavar="ENVELOPE",
        help="coordinator-only mode: skip the party simulation and "
        "merge + fit these envelope files (they must match the spec "
        "flags' fingerprint)",
    )
    fed.add_argument(
        "--budget-dir", default=None, metavar="DIR",
        help="per-party durable privacy-budget journals "
        "(DIR/party-<k>.journal), charged before any envelope exists",
    )
    fed.add_argument(
        "--centralized", action="store_true",
        help="run the single-box baseline over the same rows and noise "
        "substream instead (prints the digest the federated central "
        "mode must match bitwise)",
    )
    add_runtime_arguments(fed)

    trace = sub.add_parser(
        "trace",
        help="inspect JSONL telemetry traces written by --trace",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="validate a trace against the schema and print aggregate tables",
    )
    summarize.add_argument("path", help="JSONL trace file written by --trace")

    return parser


def _resolve_telemetry(args) -> str | None:
    """The effective ``--telemetry`` level, folding in ``--trace``.

    ``--trace`` without a level means ``trace``; an explicit ``--telemetry
    off`` alongside ``--trace`` is a contradiction and raises
    :class:`~repro.exceptions.ExperimentError`.  Returns ``None`` when
    neither flag was given, so the policy resolver's lower layers
    (``REPRO_TELEMETRY``, the policy file) still apply.
    """
    telemetry = args.telemetry
    if args.trace:
        if telemetry == "off":
            raise ExperimentError(
                "--trace needs telemetry: drop --telemetry off or pick "
                "'summary'/'trace'"
            )
        telemetry = telemetry or "trace"
    return telemetry


def _load(country: str, preset):
    """Load a census table at preset scale (the engine subcommand's path;
    the figure commands go through :meth:`Session.dataset`)."""
    loader = load_us if country == "us" else load_brazil
    if preset.max_records is not None:
        return loader(preset.max_records)
    return loader()


def _run_table2() -> str:
    from .config import (
        DIMENSIONALITIES,
        PRIVACY_BUDGETS,
        SAMPLING_RATES,
    )

    return "\n".join(
        [
            "Table 2: experimental parameters",
            f"  sampling rates:    {', '.join(f'{v:g}' for v in SAMPLING_RATES)}",
            f"  dimensionalities:  {', '.join(str(v) for v in DIMENSIONALITIES)}",
            f"  privacy budgets:   {', '.join(f'{v:g}' for v in PRIVACY_BUDGETS)}",
        ]
    )


#: Substream namespace tag for the engine subcommand's noise draws.
_ENGINE_STREAM_TAG = 0xE16


def _run_engine(args) -> int:
    """The ``engine`` subcommand: accumulate once, refit every budget."""
    try:
        epsilons = tuple(float(v) for v in args.epsilons.split(",") if v.strip())
    except ValueError:
        print(f"error: could not parse --epsilons {args.epsilons!r}", file=sys.stderr)
        return 2
    if not epsilons or any(not math.isfinite(e) or e <= 0.0 for e in epsilons):
        print(
            f"error: --epsilons needs at least one positive budget, "
            f"got {args.epsilons!r}",
            file=sys.stderr,
        )
        return 2
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    preset = _PRESETS[args.scale]
    dataset = _load(args.country, preset)
    prepared = dataset.regression_task(args.task, dims=args.dims)
    objective = objective_for(args.task, prepared.dim)

    def build():
        return ShardedAccumulator(prepared.dim, shards=args.shards).accumulate(
            prepared.X, prepared.y
        )

    # The recorder measures the statistics pass whether or not telemetry is
    # on — a NullRecorder span still carries the clock, which is exactly
    # the perf_counter pair this path always paid.
    recorder = make_recorder(_resolve_telemetry(args) or "off")
    with use_recorder(recorder):
        cache_hit = False
        with recorder.span(
            "engine.ingest", shards=args.shards, cached=bool(args.cache_dir)
        ) as ingest:
            if args.cache_dir:
                cache = AccumulatorCache(args.cache_dir)
                key = AccumulatorCache.make_key(prepared.X, prepared.y, objective)
                accumulator, cache_hit = cache.get_or_build(key, build)
            else:
                accumulator = build()
        pass_seconds = ingest.seconds

        engine = EpsilonSweepEngine(objective, accumulator)
        sweep = engine.sweep(
            epsilons, rng=derive_substream(args.seed, [_ENGINE_STREAM_TAG])
        )
        scores, norms, solves = [], [], []
        for point in sweep.points:
            scores.append(
                score_from_scores(args.task, prepared.y, prepared.X @ point.omega)
            )
            norms.append(float(np.linalg.norm(point.omega)))
            solves.append(point.solve_seconds)
        stds = None
        if args.repeats > 1:
            variance = engine.variance_estimate(
                epsilons, repeats=args.repeats,
                rng=derive_substream(args.seed, [_ENGINE_STREAM_TAG, 1]),
            )
            stds = [float(np.mean(variance.std[i])) for i in range(len(epsilons))]
    header = [
        f"rows={accumulator.n_rows} dim={prepared.dim} "
        f"blocks={accumulator.num_blocks} shards={args.shards}",
        f"statistics pass: {pass_seconds:.3f}s"
        + (" (cache hit — no data pass)" if cache_hit else ""),
        f"sensitivity Delta={engine.sensitivity:g}; "
        f"one pass, {len(epsilons)} budgets",
    ]
    print(format_engine_table(
        args.task, epsilons, scores, norms, solves, stds=stds, header_lines=header,
    ))
    if args.trace:
        recorder.write_jsonl(args.trace, meta={"entry_point": "engine"})
        print(f"trace written to {args.trace}")
    return 0


def _run_serve(args) -> int:
    """The ``serve`` subcommand: boot the HTTP service and block."""
    import asyncio

    from ..serve import ServeApp, ServeHTTP

    try:
        telemetry = _resolve_telemetry(args)
    except ExperimentError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # A service wants telemetry for its health gauges and graceful
    # degradation for its fits unless told otherwise — those are the
    # *base* defaults here, still overridable by flag/env/policy-file.
    policy = ExecutionPolicy.resolve(
        explicit={
            "runtime": args.runtime,
            "executor": args.executor,
            "max_workers": args.max_workers,
            "tile_size": args.tile_size,
            "stream_version": args.stream_version,
            "telemetry": telemetry,
            "faults": args.faults,
            "max_retries": args.max_retries,
            "tile_timeout": args.tile_timeout,
            "failure_mode": args.failure_mode,
            "backend": args.backend,
        },
        base=ExecutionPolicy(
            scale="smoke", telemetry="summary", failure_mode="fallback"
        ),
    )
    app = ServeApp(
        args.data_dir,
        Session(policy),
        max_resident_tenants=args.max_resident_tenants,
        tenant_idle_ttl=args.tenant_idle_ttl,
    )
    server = ServeHTTP(
        app,
        args.host,
        args.port,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        snapshot_interval=args.snapshot_interval,
        port_file=args.port_file,
    )

    def announce(bound: ServeHTTP) -> None:
        print(
            f"repro.serve listening on {args.host}:{bound.bound_port} "
            f"(data={args.data_dir}, tenants_restored={app.restored_tenants})",
            flush=True,
        )

    asyncio.run(server.serve(on_started=announce))
    print("repro.serve: drained and shut down cleanly", flush=True)
    return 0


def _run_federated(args) -> int:
    """The ``federated`` subcommand: K parties -> envelopes -> one fit.

    Prints one ``digest=<sha256>`` line over the released coefficients;
    in ``central`` mode (and for ``--centralized``) that digest is the
    bit-identity witness CI compares across the two paths.
    """
    from ..engine.accumulator import DEFAULT_BLOCK_SIZE
    from ..federated import (
        FederatedCoordinator,
        FederationSpec,
        centralized_fit,
        run_parties,
    )

    try:
        epsilons = tuple(float(v) for v in args.epsilons.split(",") if v.strip())
    except ValueError:
        print(f"error: could not parse --epsilons {args.epsilons!r}", file=sys.stderr)
        return 2
    if not epsilons or any(not math.isfinite(e) or e <= 0.0 for e in epsilons):
        print(
            f"error: --epsilons needs at least one positive budget, "
            f"got {args.epsilons!r}",
            file=sys.stderr,
        )
        return 2
    if args.parties < 1:
        print(f"error: --parties must be >= 1, got {args.parties}", file=sys.stderr)
        return 2
    telemetry = _resolve_telemetry(args)
    # Parties should be real processes unless the user says otherwise —
    # that's the *base* default here, still overridable by flag/env/file.
    policy = ExecutionPolicy.resolve(
        explicit={
            "runtime": args.runtime,
            "executor": args.executor,
            "max_workers": args.max_workers,
            "tile_size": args.tile_size,
            "stream_version": args.stream_version,
            "telemetry": telemetry,
            "faults": args.faults,
            "max_retries": args.max_retries,
            "tile_timeout": args.tile_timeout,
            "failure_mode": args.failure_mode,
            "backend": args.backend,
        },
        base=ExecutionPolicy(scale="smoke", executor="process"),
    )
    spec = FederationSpec(
        task=args.task,
        dim=args.dims,
        epsilons=epsilons,
        seed=args.seed,
        parties=args.parties,
        noise_mode=args.noise_mode,
        block_size=args.block_size
        if args.block_size is not None
        else DEFAULT_BLOCK_SIZE,
        stream_version=policy.stream_version,
        backend=policy.backend,
        budget_dir=args.budget_dir,
    )

    with Session(policy) as session:
        with use_recorder(session.recorder):
            if args.submit is not None:
                from pathlib import Path

                from ..federated import decode_envelope

                # --dims is the *raw* dimensionality knob; envelopes carry
                # the prepared dim.  Peek it off the first envelope (fully
                # validated, fingerprint-self-consistent) — every envelope
                # is then re-validated against the resulting spec, so a
                # lying header still cannot smuggle a mismatched schema in.
                peek = decode_envelope(Path(args.submit[0]).read_bytes())
                spec = dataclasses.replace(spec, dim=peek.dim)
                coordinator = FederatedCoordinator(spec)
                for path in args.submit:
                    coordinator.submit_path(path)
                result = coordinator.fit(tree=args.tree)
                source = f"{len(args.submit)} submitted envelope(s)"
            else:
                preset = _PRESETS[args.scale]
                dataset = _load(args.country, preset)
                prepared = dataset.regression_task(args.task, dims=args.dims)
                spec = dataclasses.replace(spec, dim=prepared.dim)
                if args.centralized:
                    result = centralized_fit(spec, prepared.X, prepared.y)
                    source = f"single box over {result.n_rows} rows"
                else:
                    outputs = run_parties(
                        spec,
                        prepared.X,
                        prepared.y,
                        executor=session.executor(),
                        out_dir=args.out_dir,
                    )
                    coordinator = FederatedCoordinator(spec)
                    for output in outputs:
                        if isinstance(output, (bytes, bytearray)):
                            coordinator.submit(bytes(output))
                        else:
                            coordinator.submit_path(output)
                    result = coordinator.fit(tree=args.tree)
                    source = (
                        f"{spec.parties} parties "
                        f"({'files' if args.out_dir else 'in-memory'}, "
                        f"executor={policy.executor})"
                    )
        if args.trace:
            session.recorder.write_jsonl(
                args.trace, meta={"entry_point": "federated"}
            )

    norms = ", ".join(
        f"{e:g}:{float(np.linalg.norm(w)):.4f}"
        for e, w in zip(result.epsilons, result.coefficients)
    )
    print(
        f"federated task={result.task} d={result.dim} mode={result.noise_mode} "
        f"parties={result.parties} rows={result.n_rows} tree={args.tree}"
    )
    print(f"source: {source}")
    print(f"|omega| per epsilon: {norms}")
    print(f"digest={result.digest}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "serve":
        try:
            return _run_serve(args)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    if args.command == "federated":
        try:
            return _run_federated(args)
        except FederatedError as error:
            # Typed, non-retryable protocol rejection: its own exit code
            # so CI's corruption run can assert the failure *kind*.
            print(f"federated: rejected: {error}", file=sys.stderr)
            return 3
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    if args.command == "engine":
        try:
            return _run_engine(args)
        except ExperimentError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    if args.command == "verify":
        return run_verify(args)

    if args.command == "trace":
        try:
            print(summarize_trace(load_trace(args.path)))
        except ReproError as error:
            print(f"trace: error: {error}", file=sys.stderr)
            return 2
        return 0

    if args.command == "table2":
        print(_run_table2())
        return 0

    if args.command == "figure2":
        curve = figure2_objective_example(epsilon=args.epsilon, rng=args.seed)
        print(format_objective_curve(curve, ("f_D(w)", "noisy f_D(w)")))
        return 0

    if args.command == "figure3":
        curve = figure3_approximation_example()
        print(format_objective_curve(curve, ("f~_D(w)", "f^_D(w)")))
        return 0

    if args.command == "convergence":
        points = convergence_study(
            [500, 2000, 8000, 32000], task=args.task, epsilon=args.epsilon
        )
        print(f"{'n':>8} {'|w_fm - w_pop|':>16} {'noise/signal':>14}")
        for p in points:
            print(f"{p.n:>8} {p.parameter_distance:>16.4f} {p.relative_noise:>14.5f}")
        return 0

    if args.command in _SWEEP_FIGURES:
        # One resolver for everything: explicit flags > REPRO_* env vars >
        # REPRO_POLICY_FILE > the CLI's smoke-scale base defaults.
        try:
            telemetry = _resolve_telemetry(args)
        except ExperimentError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        policy = ExecutionPolicy.resolve(
            explicit={
                "runtime": args.runtime,
                "executor": args.executor,
                "max_workers": args.max_workers,
                "tile_size": args.tile_size,
                "stream_version": args.stream_version,
                "scale": args.scale,
                "seed": args.seed,
                "telemetry": telemetry,
                "faults": args.faults,
                "max_retries": args.max_retries,
                "tile_timeout": args.tile_timeout,
                "failure_mode": args.failure_mode,
                "backend": args.backend,
            },
            base=ExecutionPolicy(scale="smoke"),
        )
        spec = figure_spec(args.command)
        with Session(policy) as session:
            dataset = session.dataset(args.country)
            result = session.figure(
                args.command, dataset, task=getattr(args, "task", None)
            )
        if spec.kind == "time":
            print(format_time_table(result))
        else:
            print(format_sweep_table(result))
            flags = summarize_ordering(result)
            print(f"ordering flags: {flags}")
        if args.trace:
            session.write_trace(args.trace)
            print(f"trace written to {args.trace}")
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
