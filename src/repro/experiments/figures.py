"""One driver per figure of the paper's evaluation (Figures 2-9).

Each driver returns a structured result that the reporting module renders as
the same rows/series the paper plots.  The accuracy sweeps (Figures 4-6) and
timing sweeps (Figures 7-9) share machinery: the harness measures both the
held-out metric and the fit wall-time, so a timing figure is the time-view
of the corresponding accuracy sweep restricted to the logistic task (as in
the paper: "we only report the results for logistic regression").

Since the :mod:`repro.session` API landed, the sweep drivers are
**compatibility shims**: what each figure runs is declared once in
:data:`repro.session.registry.FIGURE_SPECS`, and the public
``figure4_dimensionality`` ... ``figure9_time_budget`` functions warn,
build a one-shot :class:`~repro.session.Session` from their kwargs and
dispatch through :meth:`~repro.session.Session.figure` — replacing the
six hand-copied execution-kwarg pass-through blocks they used to carry.
The private ``_accuracy_sweep_impl`` / ``_budget_sweep_impl`` bodies stay
here as the single sweep machinery both worlds execute (bitwise
identically).  Figures 2-3 (the worked examples) take no execution kwargs
and are not shimmed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from ..baselines.base import Task
from ..core.mechanism import FunctionalMechanism
from ..core.objectives import LinearRegressionObjective, LogisticRegressionObjective
from ..data.datasets import CensusDataset
from ..privacy.rng import RngLike, ensure_rng
from .config import (
    DEFAULT,
    DEFAULT_DIMENSIONALITY,
    DEFAULT_EPSILON,
    LINEAR_ALGORITHMS,
    LOGISTIC_ALGORITHMS,
    PRIVACY_BUDGETS,
    SAMPLING_RATES,
    ScalePreset,
)
from .harness import (
    EvaluationResult,
    _evaluate_algorithms_impl,
    _evaluate_fm_budget_sweep_impl,
)

__all__ = [
    "ObjectiveCurve",
    "figure2_objective_example",
    "figure3_approximation_example",
    "SweepResult",
    "accuracy_sweep",
    "figure4_dimensionality",
    "figure5_cardinality",
    "figure6_privacy_budget",
    "figure7_time_dimensionality",
    "figure8_time_cardinality",
    "figure9_time_budget",
]


# ----------------------------------------------------------------------
# Figures 2-3: the illustrative single-dimension examples
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ObjectiveCurve:
    """A pair of 1-d objective curves over a grid of ``omega`` values.

    For Figure 2 the pair is (exact objective, FM-noisy objective); for
    Figure 3 it is (exact logistic objective, degree-2 approximation).
    ``minimizers`` holds the argmin of each curve over the grid.
    """

    omega_grid: np.ndarray
    exact: np.ndarray
    perturbed: np.ndarray
    exact_coefficients: tuple[float, ...]
    perturbed_coefficients: tuple[float, ...]
    minimizers: tuple[float, float]


#: The paper's running example database (Section 4.2 / Figure 2):
#: three 1-d tuples whose exact objective is 2.06 w^2 - 2.34 w + 1.25.
FIGURE2_DATABASE = (
    np.array([[1.0], [0.9], [-0.5]]),
    np.array([0.4, 0.3, -1.0]),
)

#: The Figure-3 example database (Section 5.2): three 1-d tuples for
#: logistic regression.
FIGURE3_DATABASE = (
    np.array([[-0.5], [0.0], [1.0]]),
    np.array([1.0, 0.0, 1.0]),
)


def figure2_objective_example(
    epsilon: float = 1.0,
    rng: RngLike = 0,
    grid: np.ndarray | None = None,
) -> ObjectiveCurve:
    """Figure 2: the linear-regression objective and its FM-noisy version.

    Reproduces the paper's example: ``f_D(w) = 2.06 w^2 - 2.34 w + 1.25``
    with ``Delta = 2 (d+1)^2 = 8``, perturbed by ``Lap(Delta/epsilon)`` per
    coefficient.
    """
    X, y = FIGURE2_DATABASE
    objective = LinearRegressionObjective(dim=1)
    exact = objective.aggregate_quadratic(X, y)
    mechanism = FunctionalMechanism(epsilon, rng=ensure_rng(rng))
    noisy, _ = mechanism.perturb_quadratic(exact, objective.sensitivity())
    omega = np.linspace(0.0, 1.0, 201) if grid is None else np.asarray(grid, float)
    exact_vals = np.array([exact.evaluate(np.array([w])) for w in omega])
    noisy_vals = np.array([noisy.evaluate(np.array([w])) for w in omega])
    return ObjectiveCurve(
        omega_grid=omega,
        exact=exact_vals,
        perturbed=noisy_vals,
        exact_coefficients=(float(exact.M[0, 0]), float(exact.alpha[0]), exact.beta),
        perturbed_coefficients=(float(noisy.M[0, 0]), float(noisy.alpha[0]), noisy.beta),
        minimizers=(float(omega[np.argmin(exact_vals)]), float(omega[np.argmin(noisy_vals)])),
    )


def figure3_approximation_example(grid: np.ndarray | None = None) -> ObjectiveCurve:
    """Figure 3: exact logistic objective vs its degree-2 approximation.

    No noise is involved — the figure isolates the Section-5 truncation
    error on the 3-tuple example database.
    """
    X, y = FIGURE3_DATABASE
    objective = LogisticRegressionObjective(dim=1)
    omega = np.linspace(0.0, 2.0, 201) if grid is None else np.asarray(grid, float)
    exact_vals = np.array([objective.true_loss(np.array([w]), X, y) for w in omega])
    approx_vals = np.array(
        [objective.approximate_loss(np.array([w]), X, y) for w in omega]
    )
    form = objective.aggregate_quadratic(X, y)
    return ObjectiveCurve(
        omega_grid=omega,
        exact=exact_vals,
        perturbed=approx_vals,
        exact_coefficients=(),
        perturbed_coefficients=(float(form.M[0, 0]), float(form.alpha[0]), form.beta),
        minimizers=(float(omega[np.argmin(exact_vals)]), float(omega[np.argmin(approx_vals)])),
    )


# ----------------------------------------------------------------------
# Figures 4-9: the parameter sweeps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepResult:
    """One panel of a sweep figure.

    ``series`` maps algorithm name -> list of :class:`EvaluationResult`,
    one per sweep value, in ``values`` order.
    """

    figure: str
    panel: str
    task: Task
    parameter: str
    values: tuple
    series: dict[str, tuple[EvaluationResult, ...]]

    def metric_series(self, algorithm: str) -> list[float]:
        """The accuracy metric across the sweep for one algorithm."""
        return [r.mean_score for r in self.series[algorithm]]

    def time_series(self, algorithm: str) -> list[float]:
        """Mean fit seconds across the sweep for one algorithm."""
        return [r.mean_fit_seconds for r in self.series[algorithm]]


def _algorithms_for(task: Task) -> tuple[str, ...]:
    return LINEAR_ALGORITHMS if task == "linear" else LOGISTIC_ALGORITHMS


def _accuracy_sweep_impl(
    dataset: CensusDataset,
    task: Task,
    parameter: Literal["dimensionality", "sampling_rate", "epsilon"],
    values: Sequence,
    figure: str,
    preset: ScalePreset = DEFAULT,
    algorithms: Sequence[str] | None = None,
    seed: int = 0,
    runtime: str = "batched",
    executor="serial",
    tile_size: int | None = None,
    stream_version: int = 1,
    prepared_cache=None,
) -> SweepResult:
    """The sweep machinery behind every accuracy/timing figure.

    Non-swept parameters sit at their Table-2 defaults; each sweep point
    evaluates its whole algorithm panel as one grouped run, sharing
    prepared data and merging same-kernel-class solves.  Scores are
    bitwise identical across runtimes, executors and tilings.

    ``prepared_cache`` may span the whole sweep (a session's persistent
    cache): identity-case task arrays are shared across points (they are
    materialized at planning time, outside the fit clock), while
    fold-level moment blocks can never collide across points — each
    point's ``seed + 1000 * i`` derives distinct fold permutations, and
    the moment key includes the train-index digest — so the timing
    figures' reported fit times keep the per-point attribution of the
    pre-session code within a sweep.
    """
    algorithms = tuple(algorithms or _algorithms_for(task))
    series: dict[str, list[EvaluationResult]] = {name: [] for name in algorithms}
    for i, value in enumerate(values):
        dims = value if parameter == "dimensionality" else DEFAULT_DIMENSIONALITY
        rate = value if parameter == "sampling_rate" else 1.0
        epsilon = value if parameter == "epsilon" else DEFAULT_EPSILON
        point = _evaluate_algorithms_impl(
            algorithms,
            dataset,
            task,
            dims=int(dims),
            epsilon=float(epsilon),
            preset=preset,
            sampling_rate=float(rate),
            seed=seed + 1000 * i,
            runtime=runtime,
            executor=executor,
            tile_size=tile_size,
            stream_version=stream_version,
            prepared_cache=prepared_cache,
        )
        for name in algorithms:
            series[name].append(point[name])
    return SweepResult(
        figure=figure,
        panel=f"{dataset.country.upper()}-{task.capitalize()}",
        task=task,
        parameter=parameter,
        values=tuple(values),
        series={name: tuple(results) for name, results in series.items()},
    )


def _budget_sweep_impl(
    dataset: CensusDataset,
    task: Task,
    figure: str,
    preset: ScalePreset,
    seed: int,
    engine: bool,
    runtime: str = "batched",
    executor="serial",
    tile_size: int | None = None,
    stream_version: int = 1,
    prepared_cache=None,
    shards: int = 1,
) -> SweepResult:
    """Shared machinery for the budget-sweep figures (6 and 9).

    With ``engine=True`` the FM series routes through the one-pass
    budget sweep: one aggregation per (repetition, fold) refit at every
    budget, so FM's share of the sweep costs one data pass instead of one
    per epsilon — and under the default batched runtime all of those
    refits are one stacked solve.  The other algorithms keep the
    per-point loop (their fits genuinely depend on epsilon-specific
    passes), batched per sweep point.
    """
    algorithms = _algorithms_for(task)
    if not engine:
        return _accuracy_sweep_impl(
            dataset, task, "epsilon", PRIVACY_BUDGETS, figure=figure,
            preset=preset, seed=seed, runtime=runtime, executor=executor,
            tile_size=tile_size, stream_version=stream_version,
            prepared_cache=prepared_cache,
        )
    others = _accuracy_sweep_impl(
        dataset, task, "epsilon", PRIVACY_BUDGETS, figure=figure,
        preset=preset, seed=seed, runtime=runtime, executor=executor,
        tile_size=tile_size, stream_version=stream_version,
        algorithms=[name for name in algorithms if name != "FM"],
        prepared_cache=prepared_cache,
    )
    fm = _evaluate_fm_budget_sweep_impl(
        dataset, task, dims=DEFAULT_DIMENSIONALITY, epsilons=PRIVACY_BUDGETS,
        preset=preset, seed=seed, shards=shards,
        runtime="auto" if runtime == "batched" else runtime,
        executor=executor, tile_size=tile_size, stream_version=stream_version,
        prepared_cache=prepared_cache,
    )
    series: dict[str, tuple[EvaluationResult, ...]] = {}
    for name in algorithms:  # preserve the paper's legend order
        if name == "FM":
            series[name] = tuple(fm[value] for value in PRIVACY_BUDGETS)
        else:
            series[name] = others.series[name]
    return SweepResult(
        figure=figure,
        panel=others.panel,
        task=task,
        parameter="epsilon",
        values=tuple(PRIVACY_BUDGETS),
        series=series,
    )


# ----------------------------------------------------------------------
# Deprecated driver shims (see repro.session.registry for the specs)
# ----------------------------------------------------------------------
def _legacy_figure(
    name: str,
    entry_point: str,
    dataset: CensusDataset,
    task: Task | None,
    preset: ScalePreset,
    seed: int,
    runtime: str,
    executor,
    tile_size: int | None,
    stream_version: int | None,
    values: Sequence | None = None,
    engine: bool | None = None,
) -> SweepResult:
    """One-shot-session dispatch shared by every deprecated driver."""
    from ..session.compat import legacy_session

    with legacy_session(
        entry_point,
        runtime=runtime,
        executor=executor,
        tile_size=tile_size,
        stream_version=stream_version,
        seed=seed,
        stacklevel=5,  # user -> figureN shim -> _legacy_figure -> here
    ) as (session, override):
        return session.figure(
            name, dataset, task, preset=preset, seed=seed,
            values=values, engine=engine, executor=override,
        )


def accuracy_sweep(
    dataset: CensusDataset,
    task: Task,
    parameter: Literal["dimensionality", "sampling_rate", "epsilon"],
    values: Sequence,
    figure: str,
    preset: ScalePreset = DEFAULT,
    algorithms: Sequence[str] | None = None,
    seed: int = 0,
    runtime: str = "batched",
    executor: str = "serial",
    tile_size: int | None = None,
    stream_version: int | None = None,
) -> SweepResult:
    """Evaluate all panel algorithms across one Table-2 parameter sweep.

    .. deprecated::
        Superseded by :meth:`repro.session.Session.sweep` with
        bitwise-identical results.
    """
    from ..session.compat import legacy_session

    with legacy_session(
        "accuracy_sweep",
        runtime=runtime,
        executor=executor,
        tile_size=tile_size,
        stream_version=stream_version,
        seed=seed,
    ) as (session, override):
        return session.sweep(
            dataset, task, parameter, tuple(values), figure,
            preset=preset, algorithms=algorithms, seed=seed,
            executor=override,
        )


def figure4_dimensionality(
    dataset: CensusDataset,
    task: Task,
    preset: ScalePreset = DEFAULT,
    seed: int = 4,
    runtime: str = "batched",
    executor: str = "serial",
    tile_size: int | None = None,
    stream_version: int | None = None,
) -> SweepResult:
    """Figure 4: accuracy vs dataset dimensionality (5, 8, 11, 14).

    .. deprecated:: use ``Session.figure("figure4", ...)``.
    """
    return _legacy_figure(
        "figure4", "figure4_dimensionality", dataset, task, preset, seed,
        runtime, executor, tile_size, stream_version,
    )


def figure5_cardinality(
    dataset: CensusDataset,
    task: Task,
    preset: ScalePreset = DEFAULT,
    seed: int = 5,
    rates: Sequence[float] = SAMPLING_RATES,
    runtime: str = "batched",
    executor: str = "serial",
    tile_size: int | None = None,
    stream_version: int | None = None,
) -> SweepResult:
    """Figure 5: accuracy vs dataset cardinality (sampling rate 0.1-1.0).

    .. deprecated:: use ``Session.figure("figure5", ..., values=rates)``.
    """
    return _legacy_figure(
        "figure5", "figure5_cardinality", dataset, task, preset, seed,
        runtime, executor, tile_size, stream_version, values=tuple(rates),
    )


def figure6_privacy_budget(
    dataset: CensusDataset,
    task: Task,
    preset: ScalePreset = DEFAULT,
    seed: int = 6,
    engine: bool = True,
    runtime: str = "batched",
    executor: str = "serial",
    tile_size: int | None = None,
    stream_version: int | None = None,
) -> SweepResult:
    """Figure 6: accuracy vs privacy budget (epsilon 0.1-3.2).

    NoPrivacy and Truncated ignore epsilon, reproducing the paper's flat
    reference lines.  By default FM is computed by the one-pass
    :mod:`repro.engine` sweep; pass ``engine=False`` for the historical
    per-point loop.

    .. deprecated:: use ``Session.figure("figure6", ...)``.
    """
    return _legacy_figure(
        "figure6", "figure6_privacy_budget", dataset, task, preset, seed,
        runtime, executor, tile_size, stream_version, engine=engine,
    )


def figure7_time_dimensionality(
    dataset: CensusDataset,
    preset: ScalePreset = DEFAULT,
    seed: int = 7,
    runtime: str = "batched",
    executor: str = "serial",
    tile_size: int | None = None,
    stream_version: int | None = None,
) -> SweepResult:
    """Figure 7: computation time vs dimensionality (logistic task).

    .. deprecated:: use ``Session.figure("figure7", ...)``.
    """
    return _legacy_figure(
        "figure7", "figure7_time_dimensionality", dataset, None, preset,
        seed, runtime, executor, tile_size, stream_version,
    )


def figure8_time_cardinality(
    dataset: CensusDataset,
    preset: ScalePreset = DEFAULT,
    seed: int = 8,
    rates: Sequence[float] = SAMPLING_RATES,
    runtime: str = "batched",
    executor: str = "serial",
    tile_size: int | None = None,
    stream_version: int | None = None,
) -> SweepResult:
    """Figure 8: computation time vs cardinality (logistic task).

    .. deprecated:: use ``Session.figure("figure8", ..., values=rates)``.
    """
    return _legacy_figure(
        "figure8", "figure8_time_cardinality", dataset, None, preset, seed,
        runtime, executor, tile_size, stream_version, values=tuple(rates),
    )


def figure9_time_budget(
    dataset: CensusDataset,
    preset: ScalePreset = DEFAULT,
    seed: int = 9,
    engine: bool = True,
    runtime: str = "batched",
    executor: str = "serial",
    tile_size: int | None = None,
    stream_version: int | None = None,
) -> SweepResult:
    """Figure 9: computation time vs privacy budget (logistic task).

    With ``engine=True`` (default) FM's times reflect the one-pass engine:
    per-epsilon marginal solve time plus an amortized share of the single
    statistics pass.

    .. deprecated:: use ``Session.figure("figure9", ...)``.
    """
    return _legacy_figure(
        "figure9", "figure9_time_budget", dataset, None, preset, seed,
        runtime, executor, tile_size, stream_version, engine=engine,
    )
