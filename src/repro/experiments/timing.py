"""Stand-alone timing measurements (Figures 7-9 and the efficiency claims).

The sweep drivers already record per-fit wall time; this module provides the
lower-level :func:`time_fit` used by the ablation benches and a
:func:`fm_speedup_over` helper that computes the headline Figure-7 claim
("the running time of FM is at least one order of magnitude lower than that
of NoPrivacy" for logistic regression).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..baselines.base import Task, make_algorithm
from ..privacy.rng import derive_substream

__all__ = ["FitTiming", "time_fit", "fm_speedup_over"]


@dataclass(frozen=True)
class FitTiming:
    """Wall-clock statistics for repeated fits of one algorithm."""

    algorithm: str
    mean_seconds: float
    min_seconds: float
    repetitions: int


def time_fit(
    algorithm: str,
    X: np.ndarray,
    y: np.ndarray,
    task: Task,
    epsilon: float = 0.8,
    repetitions: int = 3,
    seed: int = 0,
    algorithm_kwargs: Mapping | None = None,
) -> FitTiming:
    """Time ``fit`` for one algorithm on fixed data.

    A fresh model (and fresh noise stream) is constructed per repetition so
    private algorithms cannot amortize anything across fits.
    """
    kwargs = dict(algorithm_kwargs or {})
    durations = []
    for rep in range(int(repetitions)):
        model = make_algorithm(
            algorithm, task, epsilon=epsilon,
            rng=derive_substream(seed, [rep]), **kwargs,
        )
        started = time.perf_counter()
        model.fit(X, y)
        durations.append(time.perf_counter() - started)
    return FitTiming(
        algorithm=algorithm,
        mean_seconds=float(np.mean(durations)),
        min_seconds=float(np.min(durations)),
        repetitions=int(repetitions),
    )


def fm_speedup_over(
    baseline: str,
    X: np.ndarray,
    y: np.ndarray,
    task: Task = "logistic",
    epsilon: float = 0.8,
    repetitions: int = 3,
    seed: int = 0,
) -> float:
    """Ratio ``time(baseline) / time(FM)`` on the given data.

    The paper's Figure-7 discussion reports this at >= 10 for
    ``baseline="NoPrivacy"`` on the logistic task: FM solves one quadratic
    program while NoPrivacy iterates Newton steps over every tuple.
    """
    fm = time_fit("FM", X, y, task, epsilon=epsilon, repetitions=repetitions, seed=seed)
    other = time_fit(
        baseline, X, y, task, epsilon=epsilon, repetitions=repetitions, seed=seed + 1
    )
    return other.mean_seconds / max(fm.mean_seconds, 1e-12)
