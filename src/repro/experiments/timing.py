"""Stand-alone timing measurements (Figures 7-9 and the efficiency claims).

The sweep drivers (Figures 7-9) record per-fit wall time through the cell
runtime; this module provides the lower-level :func:`time_fit` used by the
ablation benches and a :func:`fm_speedup_over` helper that computes the
headline Figure-7 claim ("the running time of FM is at least one order of
magnitude lower than that of NoPrivacy" for logistic regression).

``time_fit`` is itself expressed over the runtime rather than a private
per-cell loop: the repetitions are planned as single-fold cells of a
:class:`~repro.runtime.CellPlan` (one repetition per fold, training on all
rows) and executed through the per-cell reference path.  The measurement
comes from :mod:`repro.obs`: the plan runs under a local
:class:`~repro.obs.TraceRecorder` and the durations are the runtime's
``cell.fit`` spans — the same span, wrapping exactly ``model.fit``, that
every traced run records, so the numbers are identical to the historical
fit-only ``perf_counter`` clock this module used to keep by hand.  Each
repetition's noise stream is still ``derive_substream(seed, [rep])`` — the
plan's stream tags reproduce the historical derivation bit for bit — so
timed fits draw the same noise the pre-runtime loop drew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..baselines.base import Task
from ..exceptions import ExperimentError
from ..obs import TraceRecorder, active_recorder, use_recorder
from ..runtime import KERNEL_GENERIC, CellExecutor, CellPlan, PlannedFold, run_plan

__all__ = ["FitTiming", "time_fit", "fm_speedup_over"]


@dataclass(frozen=True)
class FitTiming:
    """Wall-clock statistics for repeated fits of one algorithm."""

    algorithm: str
    mean_seconds: float
    min_seconds: float
    repetitions: int


def _timing_plan(
    algorithm: str,
    X: np.ndarray,
    y: np.ndarray,
    task: Task,
    epsilon: float,
    repetitions: int,
    seed: int,
    kwargs: Mapping,
) -> CellPlan:
    """Plan ``repetitions`` train-on-everything cells over fixed arrays.

    Each repetition is one planned fold whose training split is the whole
    dataset and whose stream tag is ``(rep,)`` — matching the historical
    ``derive_substream(seed, [rep])`` per-repetition stream exactly.  The
    single-row test split only feeds the (discarded) score; fit timing is
    measured around ``fit`` alone, as before.
    """
    from .config import ScalePreset  # lazy: config imports nothing from here

    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if repetitions < 1:
        raise ExperimentError(f"repetitions must be >= 1, got {repetitions}")
    n = X.shape[0]
    folds = tuple(
        PlannedFold(
            rep=rep,
            fold=0,
            X=X,
            y=y,
            train_idx=np.arange(n),
            test_idx=np.arange(min(1, n)),
            stream_tag=(rep,),
        )
        for rep in range(int(repetitions))
    )
    return CellPlan(
        algorithm=algorithm,
        task=task,
        dims=X.shape[1],
        dim=X.shape[1],
        epsilons=(float(epsilon),),
        preset=ScalePreset(name="timing", max_records=None, folds=2, repetitions=int(repetitions)),
        sampling_rate=1.0,
        seed=int(seed),
        algorithm_kwargs=dict(kwargs),
        folds=folds,
        # Timing wants individual per-fit clocks, which only the per-cell
        # path reports; the generic tag keeps batched dispatch away even if
        # a caller passes mode="batched".
        kernel=KERNEL_GENERIC,
    )


def time_fit(
    algorithm: str,
    X: np.ndarray,
    y: np.ndarray,
    task: Task,
    epsilon: float = 0.8,
    repetitions: int = 3,
    seed: int = 0,
    algorithm_kwargs: Mapping | None = None,
    executor: str | CellExecutor = "serial",
) -> FitTiming:
    """Time ``fit`` for one algorithm on fixed data.

    A fresh model (and fresh noise stream) is constructed per repetition so
    private algorithms cannot amortize anything across fits.  Execution
    goes through the cell runtime's per-cell path; ``executor`` spreads
    repetitions when timing on an idle multi-core box (the default serial
    executor measures one fit at a time, which is what the figures report).
    """
    plan = _timing_plan(
        algorithm, X, y, task, epsilon, repetitions, seed, dict(algorithm_kwargs or {})
    )
    # A local trace recorder observes the run; the fit durations are read
    # back from the ``cell.fit`` spans rather than a private clock.  If an
    # outer recorder is active (a traced session timing a fit), the local
    # activity is merged into it so the outer trace still sees everything.
    outer = active_recorder()
    recorder = TraceRecorder(mode="trace")
    with use_recorder(recorder):
        run_plan(plan, mode="percell", executor=executor)
    durations = [
        event["seconds"] for event in recorder.events() if event["name"] == "cell.fit"
    ]
    if outer.recording:
        outer.merge(recorder.export())
    return FitTiming(
        algorithm=algorithm,
        mean_seconds=float(np.mean(durations)),
        min_seconds=float(np.min(durations)),
        repetitions=int(repetitions),
    )


def fm_speedup_over(
    baseline: str,
    X: np.ndarray,
    y: np.ndarray,
    task: Task = "logistic",
    epsilon: float = 0.8,
    repetitions: int = 3,
    seed: int = 0,
) -> float:
    """Ratio ``time(baseline) / time(FM)`` on the given data.

    The paper's Figure-7 discussion reports this at >= 10 for
    ``baseline="NoPrivacy"`` on the logistic task: FM solves one quadratic
    program while NoPrivacy iterates Newton steps over every tuple.
    """
    fm = time_fit("FM", X, y, task, epsilon=epsilon, repetitions=repetitions, seed=seed)
    other = time_fit(
        baseline, X, y, task, epsilon=epsilon, repetitions=repetitions, seed=seed + 1
    )
    return other.mean_seconds / max(fm.mean_seconds, 1e-12)
