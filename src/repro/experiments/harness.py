"""The Section-7 evaluation protocol: repeated k-fold cross-validation.

"In each experiment, we perform 5-fold cross-validation 50 times for each
algorithm, and we report the average results."  This module implements that
protocol over the uniform :class:`~repro.baselines.base.BaselineRegressor`
interface: every (repetition, fold) trains the algorithm on the training
split, scores the paper's metric on the held-out fold, and also records the
fit wall-time (feeding Figures 7-9).

Randomness plumbing: each (repetition, fold, algorithm) cell derives its own
RNG substream keyed by position, so results are reproducible and algorithms
see independent noise across cells regardless of execution order.

Budget sweeps have a dedicated fast path,
:func:`evaluate_fm_budget_sweep`: because FM's database-level coefficients
do not depend on epsilon, each (repetition, fold) training split is
accumulated **once** through :mod:`repro.engine` and refit at every budget —
O(1 data pass + n_eps solves) instead of O(n_eps) passes.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..baselines.base import Task, make_algorithm
from ..core.objectives import (
    LinearRegressionObjective,
    LogisticRegressionObjective,
)
from ..data.datasets import CensusDataset
from ..engine import EpsilonSweepEngine, ShardedAccumulator
from ..exceptions import ExperimentError
from ..privacy.rng import derive_substream
from ..regression.metrics import mean_squared_error, misclassification_rate
from ..regression.preprocessing import KFold
from .config import DEFAULT, ScalePreset

__all__ = [
    "EvaluationResult",
    "evaluate_algorithm",
    "evaluate_algorithms",
    "evaluate_fm_budget_sweep",
    "objective_for",
    "score_from_scores",
]


def _algorithm_stream_key(name: str) -> int:
    """Stable per-algorithm substream key.

    ``hash(str)`` is salted per process (PYTHONHASHSEED), which would make
    "reproducible" results differ between runs; a truncated SHA-256 is
    deterministic everywhere.
    """
    return int.from_bytes(hashlib.sha256(name.encode()).digest()[:4], "big")


def objective_for(task: Task, dim: int):
    """The degree-2 objective matching a harness task."""
    if task == "linear":
        return LinearRegressionObjective(dim)
    return LogisticRegressionObjective(dim)


def score_from_scores(task: Task, y_true: np.ndarray, z: np.ndarray) -> float:
    """The paper's metric from raw scores ``z = X @ omega``.

    For logistic, ``z > 0`` is exactly the sigmoid(z) > 0.5 threshold.
    """
    if task == "linear":
        return mean_squared_error(y_true, z)
    return misclassification_rate(y_true, (z > 0.0).astype(float))


@dataclass(frozen=True)
class EvaluationResult:
    """Aggregated cross-validated performance of one algorithm.

    Attributes
    ----------
    algorithm:
        Registry name (e.g. ``"FM"``).
    task:
        ``"linear"`` or ``"logistic"``.
    mean_score:
        Average held-out metric over all (repetition, fold) cells — MSE for
        linear, misclassification rate for logistic (lower is better).
    std_score:
        Standard deviation over cells.
    mean_fit_seconds:
        Average wall-clock time of ``fit`` (the paper's "computation time").
    cells:
        Number of (repetition, fold) measurements aggregated.
    n_train:
        Training-set size of each fold.
    """

    algorithm: str
    task: str
    mean_score: float
    std_score: float
    mean_fit_seconds: float
    cells: int
    n_train: int


def evaluate_algorithm(
    algorithm: str,
    dataset: CensusDataset,
    task: Task,
    dims: int,
    epsilon: float,
    preset: ScalePreset = DEFAULT,
    sampling_rate: float = 1.0,
    seed: int = 0,
    algorithm_kwargs: Mapping | None = None,
) -> EvaluationResult:
    """Run the full repeated-CV protocol for one algorithm at one sweep point.

    Parameters
    ----------
    algorithm:
        Registry name; private algorithms receive ``epsilon``.
    dataset:
        The raw census dataset (sampling and normalization happen here).
    dims:
        Table-2 dimensionality (selects the paper's attribute subset).
    epsilon:
        Privacy budget per fit.
    preset:
        Compute scale (records cap, folds, repetitions).
    sampling_rate:
        Table-2 sampling rate, applied to the preset-capped cardinality.
    seed:
        Base seed; all cell substreams derive from it.
    algorithm_kwargs:
        Extra constructor arguments (ablation benches use this).
    """
    if not 0.0 < sampling_rate <= 1.0:
        raise ExperimentError(f"sampling_rate must be in (0, 1], got {sampling_rate!r}")
    kwargs = dict(algorithm_kwargs or {})
    base_n = preset.cardinality(dataset.n)
    scores: list[float] = []
    fit_times: list[float] = []
    n_train = 0
    for rep in range(preset.repetitions):
        rep_rng = derive_substream(seed, [_algorithm_stream_key(algorithm), rep])
        working = dataset
        if base_n < dataset.n:
            working = working.take(
                rep_rng.choice(dataset.n, size=base_n, replace=False)
            )
        if sampling_rate < 1.0:
            working = working.sample(sampling_rate, rng=rep_rng)
        prepared = working.regression_task(task, dims=dims)
        folds = KFold(n_splits=preset.folds, rng=rep_rng)
        for fold_id, (train_idx, test_idx) in enumerate(folds.split(prepared.n)):
            model = make_algorithm(
                algorithm,
                task,
                epsilon=epsilon,
                rng=derive_substream(seed, [_algorithm_stream_key(algorithm), rep, fold_id]),
                **kwargs,
            )
            started = time.perf_counter()
            model.fit(prepared.X[train_idx], prepared.y[train_idx])
            fit_times.append(time.perf_counter() - started)
            scores.append(model.score(prepared.X[test_idx], prepared.y[test_idx]))
            n_train = train_idx.shape[0]
    return EvaluationResult(
        algorithm=algorithm,
        task=task,
        mean_score=float(np.mean(scores)),
        std_score=float(np.std(scores)),
        mean_fit_seconds=float(np.mean(fit_times)),
        cells=len(scores),
        n_train=n_train,
    )


def evaluate_fm_budget_sweep(
    dataset: CensusDataset,
    task: Task,
    dims: int,
    epsilons: Sequence[float],
    preset: ScalePreset = DEFAULT,
    sampling_rate: float = 1.0,
    seed: int = 0,
    shards: int = 1,
    post_processing: str = "spectral",
    tight_sensitivity: bool = False,
) -> dict[float, EvaluationResult]:
    """Run FM's repeated-CV protocol at *all* budgets with one pass per cell.

    Mirrors :func:`evaluate_algorithm` for the ``"FM"`` algorithm across an
    epsilon vector, but instead of refitting from the raw data per budget,
    each (repetition, fold) training split feeds a
    :class:`~repro.engine.MomentAccumulator` exactly once and an
    :class:`~repro.engine.EpsilonSweepEngine` refits every epsilon from the
    finalized statistics.  The per-epsilon ``mean_fit_seconds`` records that
    epsilon's marginal solve time plus an equal share of the (single)
    accumulation pass.

    Unlike the per-point loop path — where every sweep point re-derives its
    own subsample and folds — all epsilons here share each repetition's
    folds; that is precisely what makes one pass possible, and the paper's
    protocol averages over folds either way.

    Parameters mirror :func:`evaluate_algorithm`; additionally ``shards``
    parallelizes the accumulation pass and ``post_processing`` /
    ``tight_sensitivity`` configure the mechanism as the FM estimator
    kwargs would.
    """
    if not 0.0 < sampling_rate <= 1.0:
        raise ExperimentError(f"sampling_rate must be in (0, 1], got {sampling_rate!r}")
    epsilon_values = [float(e) for e in epsilons]
    if not epsilon_values:
        raise ExperimentError("epsilons must be non-empty")
    scores: dict[float, list[float]] = {e: [] for e in epsilon_values}
    fit_times: dict[float, list[float]] = {e: [] for e in epsilon_values}
    n_train = 0
    algorithm_key = _algorithm_stream_key("FM")
    base_n = preset.cardinality(dataset.n)
    for rep in range(preset.repetitions):
        rep_rng = derive_substream(seed, [algorithm_key, rep])
        working = dataset
        if base_n < dataset.n:
            working = working.take(rep_rng.choice(dataset.n, size=base_n, replace=False))
        if sampling_rate < 1.0:
            working = working.sample(sampling_rate, rng=rep_rng)
        prepared = working.regression_task(task, dims=dims)
        objective = objective_for(task, prepared.dim)
        folds = KFold(n_splits=preset.folds, rng=rep_rng)
        for fold_id, (train_idx, test_idx) in enumerate(folds.split(prepared.n)):
            X_train, y_train = prepared.X[train_idx], prepared.y[train_idx]
            started = time.perf_counter()
            accumulator = ShardedAccumulator(prepared.dim, shards=shards).accumulate(
                X_train, y_train
            )
            pass_seconds = time.perf_counter() - started
            engine = EpsilonSweepEngine(
                objective,
                accumulator,
                tight_sensitivity=tight_sensitivity,
                post_processing=post_processing,
            )
            sweep = engine.sweep(
                epsilon_values,
                rng=derive_substream(seed, [algorithm_key, rep, fold_id]),
            )
            X_test, y_test = prepared.X[test_idx], prepared.y[test_idx]
            for point in sweep.points:
                scores[point.epsilon].append(
                    score_from_scores(task, y_test, X_test @ point.omega)
                )
                fit_times[point.epsilon].append(
                    pass_seconds / len(epsilon_values) + point.solve_seconds
                )
            n_train = train_idx.shape[0]
    return {
        e: EvaluationResult(
            algorithm="FM",
            task=task,
            mean_score=float(np.mean(scores[e])),
            std_score=float(np.std(scores[e])),
            mean_fit_seconds=float(np.mean(fit_times[e])),
            cells=len(scores[e]),
            n_train=n_train,
        )
        for e in epsilon_values
    }


def evaluate_algorithms(
    algorithms: Sequence[str],
    dataset: CensusDataset,
    task: Task,
    dims: int,
    epsilon: float,
    preset: ScalePreset = DEFAULT,
    sampling_rate: float = 1.0,
    seed: int = 0,
) -> dict[str, EvaluationResult]:
    """Evaluate several algorithms at one sweep point; keyed by name."""
    return {
        name: evaluate_algorithm(
            name,
            dataset,
            task,
            dims=dims,
            epsilon=epsilon,
            preset=preset,
            sampling_rate=sampling_rate,
            seed=seed,
        )
        for name in algorithms
    }
