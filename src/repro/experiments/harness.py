"""The Section-7 evaluation protocol: repeated k-fold cross-validation.

"In each experiment, we perform 5-fold cross-validation 50 times for each
algorithm, and we report the average results."  This module implements that
protocol over the uniform :class:`~repro.baselines.base.BaselineRegressor`
interface: every (repetition, fold) trains the algorithm on the training
split, scores the paper's metric on the held-out fold, and also records the
fit wall-time (feeding Figures 7-9).

Execution routes through :mod:`repro.runtime`: the protocol's cells are
enumerated into a :class:`~repro.runtime.plan.CellPlan` (eager) or — with
``tile_size`` set — a lazily materializing
:class:`~repro.runtime.plan.TiledPlan` that bounds resident memory to a few
repetitions at a time, and run either through the batched tensor kernels
(default — all closed-form cells in one stacked LAPACK call, logistic cells
through the masked batched Newton) or cell by cell as the reference oracle.
All paths produce bitwise-identical scores at any tiling and on any
executor; ``runtime="percell"`` exists to prove it and to time the
baseline.  :func:`evaluate_algorithms` additionally runs a whole algorithm
panel as one group — shared prepared-data cache, merged cross-algorithm
stacked solves — still bit-identical to evaluating each algorithm alone.

Randomness plumbing: each (repetition, fold, algorithm) cell derives its own
RNG substream keyed by position, so results are reproducible and algorithms
see independent noise across cells regardless of execution order — or of
which runtime path executes them.

Budget sweeps have a dedicated fast path,
:func:`evaluate_fm_budget_sweep`: because FM's database-level coefficients
do not depend on epsilon, each (repetition, fold) training split is
aggregated **once** and refit at every budget — O(1 data pass + n_eps
solves) instead of O(n_eps) passes.  The default routes through the batched
runtime; ``runtime="engine"`` keeps PR 1's streaming
:mod:`repro.engine` path (and is implied by ``shards > 1``).

Deprecation note: the public functions here are **compatibility shims**
since the :mod:`repro.session` API landed — each one warns, builds a
one-shot :class:`~repro.session.Session` from its kwargs, and delegates
to the private ``_*_impl`` twins the session entry points call directly.
Results are bitwise identical either way (asserted by
``tests/session/test_session_equivalence.py``); only the warning differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..baselines.base import Task
from ..core.objectives import (
    LinearRegressionObjective,
    LogisticRegressionObjective,
)
from ..data.datasets import CensusDataset
from ..engine import EpsilonSweepEngine, ShardedAccumulator
from ..exceptions import ExperimentError
from ..obs import active_recorder
from ..privacy.rng import derive_substream
from ..regression.metrics import mean_squared_error, misclassification_rate
from ..regression.preprocessing import KFold
from ..runtime import (
    CellExecutor,
    PlanResult,
    PreparedDataCache,
    algorithm_stream_key,
    plan_cells,
    plan_cells_tiled,
    run_plan,
    run_plan_group,
)
from .config import DEFAULT, ScalePreset

__all__ = [
    "EvaluationResult",
    "evaluate_algorithm",
    "evaluate_algorithms",
    "evaluate_fm_budget_sweep",
    "objective_for",
    "score_from_scores",
]


#: Back-compat alias — the key derivation now lives with the cell planner.
_algorithm_stream_key = algorithm_stream_key


def objective_for(task: Task, dim: int):
    """The degree-2 objective matching a harness task."""
    if task == "linear":
        return LinearRegressionObjective(dim)
    return LogisticRegressionObjective(dim)


def score_from_scores(task: Task, y_true: np.ndarray, z: np.ndarray) -> float:
    """The paper's metric from raw scores ``z = X @ omega``.

    For logistic, ``z > 0`` is exactly the sigmoid(z) > 0.5 threshold.
    """
    if task == "linear":
        return mean_squared_error(y_true, z)
    return misclassification_rate(y_true, (z > 0.0).astype(float))


@dataclass(frozen=True)
class EvaluationResult:
    """Aggregated cross-validated performance of one algorithm.

    Attributes
    ----------
    algorithm:
        Registry name (e.g. ``"FM"``).
    task:
        ``"linear"`` or ``"logistic"``.
    mean_score:
        Average held-out metric over all (repetition, fold) cells — MSE for
        linear, misclassification rate for logistic (lower is better).
    std_score:
        Standard deviation over cells.
    mean_fit_seconds:
        Average wall-clock time of ``fit`` (the paper's "computation
        time").  Batched-runtime cells report an equal share of their
        kernel's fit time (held-out scoring excluded, as in the per-cell
        clock); per-cell execution reports individual fits.
    cells:
        Number of (repetition, fold) measurements aggregated.
    n_train:
        Training-set size of each fold.
    """

    algorithm: str
    task: str
    mean_score: float
    std_score: float
    mean_fit_seconds: float
    cells: int
    n_train: int


def _result_for_epsilon(
    outcome: PlanResult, algorithm: str, task: Task, epsilon: float
) -> EvaluationResult:
    """Aggregate one epsilon's cells into the harness result type."""
    scores = outcome.scores[epsilon]
    return EvaluationResult(
        algorithm=algorithm,
        task=task,
        mean_score=float(np.mean(scores)),
        std_score=float(np.std(scores)),
        mean_fit_seconds=float(np.mean(outcome.fit_seconds[epsilon])),
        cells=len(scores),
        n_train=outcome.n_train,
    )


def evaluate_algorithm(
    algorithm: str,
    dataset: CensusDataset,
    task: Task,
    dims: int,
    epsilon: float,
    preset: ScalePreset = DEFAULT,
    sampling_rate: float = 1.0,
    seed: int = 0,
    algorithm_kwargs: Mapping | None = None,
    runtime: str = "batched",
    executor: str | CellExecutor = "serial",
    tile_size: int | None = None,
    stream_version: int | None = None,
) -> EvaluationResult:
    """Run the full repeated-CV protocol for one algorithm at one sweep point.

    .. deprecated::
        Threading execution kwargs per call is superseded by
        :class:`repro.session.Session` —
        ``Session(policy).evaluate(algorithm, dataset, task, dims,
        epsilon, ...)`` — with bitwise-identical results.

    Parameters
    ----------
    algorithm:
        Registry name; private algorithms receive ``epsilon``.
    dataset:
        The raw census dataset (sampling and normalization happen here).
    dims:
        Table-2 dimensionality (selects the paper's attribute subset).
    epsilon:
        Privacy budget per fit.
    preset:
        Compute scale (records cap, folds, repetitions).
    sampling_rate:
        Table-2 sampling rate, applied to the preset-capped cardinality.
    seed:
        Base seed; all cell substreams derive from it.
    algorithm_kwargs:
        Extra constructor arguments (ablation benches use this).
    runtime:
        ``"batched"`` (default) executes supported algorithms through the
        stacked runtime kernels; ``"percell"`` forces the per-cell
        reference path.  Scores are bitwise identical either way.
    executor:
        Executor for parallel work: ``"serial"``, ``"thread"`` or
        ``"process"``.  Spreads per-cell work (non-batchable baselines, or
        everything under ``runtime="percell"``), and with ``tile_size``
        set and multiple tiles, whole batched tiles.
    tile_size:
        ``None`` (default) plans eagerly — all repetitions' prepared
        arrays resident at once, as before.  An integer bounds the
        resident set to that many repetitions per tile (``1`` restores the
        historical one-rep-at-a-time memory profile).  Scores are bitwise
        identical at every tiling.
    stream_version:
        :func:`~repro.privacy.rng.derive_substream` format; ``None``
        follows :data:`repro.session.DEFAULT_STREAM_VERSION` (2, the
        fixed alias-free derivation, since PR 6); ``1`` reproduces the
        historical streams bit for bit.
    """
    from ..session.compat import legacy_session

    with legacy_session(
        "evaluate_algorithm",
        runtime=runtime,
        executor=executor,
        tile_size=tile_size,
        stream_version=stream_version,
        seed=seed,
    ) as (session, override):
        return session.evaluate(
            algorithm,
            dataset,
            task,
            dims,
            epsilon,
            preset=preset,
            sampling_rate=sampling_rate,
            seed=seed,
            algorithm_kwargs=algorithm_kwargs,
            executor=override,
        )


def _evaluate_algorithm_impl(
    algorithm: str,
    dataset: CensusDataset,
    task: Task,
    dims: int,
    epsilon: float,
    preset: ScalePreset = DEFAULT,
    sampling_rate: float = 1.0,
    seed: int = 0,
    algorithm_kwargs: Mapping | None = None,
    runtime: str = "batched",
    executor: str | CellExecutor = "serial",
    tile_size: int | None = None,
    stream_version: int = 1,
    prepared_cache: PreparedDataCache | None = None,
) -> EvaluationResult:
    """The protocol body behind :func:`evaluate_algorithm` (no warning).

    ``prepared_cache`` opts into cross-call prepared-data reuse (a
    session passes its persistent cache); every other parameter is
    documented on the public shim.
    """
    if tile_size is None:
        plan = plan_cells(
            algorithm,
            dataset,
            task,
            dims=dims,
            epsilons=[epsilon],
            preset=preset,
            sampling_rate=sampling_rate,
            seed=seed,
            algorithm_kwargs=algorithm_kwargs,
            stream_version=stream_version,
            prepared_cache=prepared_cache,
        )
    else:
        plan = plan_cells_tiled(
            algorithm,
            dataset,
            task,
            dims=dims,
            epsilons=[epsilon],
            preset=preset,
            sampling_rate=sampling_rate,
            seed=seed,
            algorithm_kwargs=algorithm_kwargs,
            tile_size=tile_size,
            stream_version=stream_version,
            prepared_cache=prepared_cache,
        )
    outcome = run_plan(plan, mode=runtime, executor=executor)
    return _result_for_epsilon(outcome, algorithm, task, float(epsilon))


def evaluate_fm_budget_sweep(
    dataset: CensusDataset,
    task: Task,
    dims: int,
    epsilons: Sequence[float],
    preset: ScalePreset = DEFAULT,
    sampling_rate: float = 1.0,
    seed: int = 0,
    shards: int = 1,
    post_processing: str = "spectral",
    tight_sensitivity: bool = False,
    runtime: str = "auto",
    executor: str | CellExecutor = "serial",
    tile_size: int | None = None,
    stream_version: int | None = None,
) -> dict[float, EvaluationResult]:
    """Run FM's repeated-CV protocol at *all* budgets with one pass per cell.

    .. deprecated::
        Superseded by :meth:`repro.session.Session.budget_sweep` with
        bitwise-identical results.

    Mirrors :func:`evaluate_algorithm` for the ``"FM"`` algorithm across an
    epsilon vector, but instead of refitting from the raw data per budget,
    each (repetition, fold) training split is aggregated exactly once and
    refit at every epsilon from the finalized coefficients.

    Unlike the per-point loop path — where every sweep point re-derives its
    own subsample and folds — all epsilons here share each repetition's
    folds; that is precisely what makes one pass possible, and the paper's
    protocol averages over folds either way.

    Parameters mirror :func:`evaluate_algorithm`; additionally:

    shards:
        Parallel ingestion shards for the streaming-engine path (implies
        ``runtime="engine"`` when greater than one).
    post_processing / tight_sensitivity:
        Mechanism configuration, as the FM estimator kwargs would be.
    runtime:
        ``"auto"`` (default) picks the batched runtime, falling back to the
        streaming engine when ``shards > 1`` or a non-spectral repair is
        requested; ``"batched"`` / ``"percell"`` force the runtime paths;
        ``"engine"`` forces the PR-1 streaming-accumulator path.
    tile_size / stream_version:
        As in :func:`evaluate_algorithm`.  ``tile_size`` applies to the
        runtime paths (the engine path already streams one repetition at a
        time and ignores it).
    """
    from ..session.compat import legacy_session

    with legacy_session(
        "evaluate_fm_budget_sweep",
        runtime=runtime,
        executor=executor,
        tile_size=tile_size,
        stream_version=stream_version,
        seed=seed,
        shards=shards,
    ) as (session, override):
        return session.budget_sweep(
            dataset,
            task,
            dims,
            epsilons,
            preset=preset,
            sampling_rate=sampling_rate,
            seed=seed,
            post_processing=post_processing,
            tight_sensitivity=tight_sensitivity,
            executor=override,
        )


def _evaluate_fm_budget_sweep_impl(
    dataset: CensusDataset,
    task: Task,
    dims: int,
    epsilons: Sequence[float],
    preset: ScalePreset = DEFAULT,
    sampling_rate: float = 1.0,
    seed: int = 0,
    shards: int = 1,
    post_processing: str = "spectral",
    tight_sensitivity: bool = False,
    runtime: str = "auto",
    executor: str | CellExecutor = "serial",
    tile_size: int | None = None,
    stream_version: int = 1,
    prepared_cache: PreparedDataCache | None = None,
) -> dict[float, EvaluationResult]:
    """The sweep body behind :func:`evaluate_fm_budget_sweep` (no warning)."""
    epsilon_values = [float(e) for e in epsilons]
    if not epsilon_values:
        raise ExperimentError("epsilons must be non-empty")
    if runtime == "auto":
        runtime = (
            "engine" if shards != 1 or post_processing != "spectral" else "batched"
        )
    elif shards != 1 and runtime != "engine":
        raise ExperimentError(
            f"shards={shards} only applies to the streaming-engine path; "
            f"use runtime='engine' (or 'auto') instead of {runtime!r}"
        )
    if runtime == "engine":
        return _fm_budget_sweep_engine(
            dataset,
            task,
            dims,
            epsilon_values,
            preset=preset,
            sampling_rate=sampling_rate,
            seed=seed,
            shards=shards,
            post_processing=post_processing,
            tight_sensitivity=tight_sensitivity,
            stream_version=stream_version,
        )
    fm_kwargs = {
        "post_processing": post_processing,
        "tight_sensitivity": tight_sensitivity,
    }
    if tile_size is None:
        plan = plan_cells(
            "FM",
            dataset,
            task,
            dims=dims,
            epsilons=epsilon_values,
            preset=preset,
            sampling_rate=sampling_rate,
            seed=seed,
            algorithm_kwargs=fm_kwargs,
            stream_version=stream_version,
            prepared_cache=prepared_cache,
        )
    else:
        plan = plan_cells_tiled(
            "FM",
            dataset,
            task,
            dims=dims,
            epsilons=epsilon_values,
            preset=preset,
            sampling_rate=sampling_rate,
            seed=seed,
            algorithm_kwargs=fm_kwargs,
            tile_size=tile_size,
            stream_version=stream_version,
            prepared_cache=prepared_cache,
        )
    outcome = run_plan(plan, mode=runtime, executor=executor)
    return {
        e: _result_for_epsilon(outcome, "FM", task, e) for e in epsilon_values
    }


def _fm_budget_sweep_engine(
    dataset: CensusDataset,
    task: Task,
    dims: int,
    epsilon_values: list[float],
    preset: ScalePreset,
    sampling_rate: float,
    seed: int,
    shards: int,
    post_processing: str,
    tight_sensitivity: bool,
    stream_version: int = 1,
) -> dict[float, EvaluationResult]:
    """The streaming-engine sweep: accumulate once per fold, refit per epsilon.

    Each training split feeds a sharded
    :class:`~repro.engine.MomentAccumulator` exactly once and an
    :class:`~repro.engine.EpsilonSweepEngine` refits every epsilon from the
    finalized statistics.  The per-epsilon ``mean_fit_seconds`` records that
    epsilon's marginal solve time plus an equal share of the (single)
    accumulation pass.
    """
    if not 0.0 < sampling_rate <= 1.0:
        raise ExperimentError(f"sampling_rate must be in (0, 1], got {sampling_rate!r}")
    scores: dict[float, list[float]] = {e: [] for e in epsilon_values}
    fit_times: dict[float, list[float]] = {e: [] for e in epsilon_values}
    n_train = 0
    algorithm_key = algorithm_stream_key("FM")
    base_n = preset.cardinality(dataset.n)
    for rep in range(preset.repetitions):
        rep_rng = derive_substream(
            seed, [algorithm_key, rep], stream_version=stream_version
        )
        working = dataset
        if base_n < dataset.n:
            working = working.take(rep_rng.choice(dataset.n, size=base_n, replace=False))
        if sampling_rate < 1.0:
            working = working.sample(sampling_rate, rng=rep_rng)
        prepared = working.regression_task(task, dims=dims)
        objective = objective_for(task, prepared.dim)
        folds = KFold(n_splits=preset.folds, rng=rep_rng)
        for fold_id, (train_idx, test_idx) in enumerate(folds.split(prepared.n)):
            X_train, y_train = prepared.X[train_idx], prepared.y[train_idx]
            with active_recorder().span(
                "engine.accumulate", shards=shards, rows=int(train_idx.shape[0])
            ) as span:
                accumulator = ShardedAccumulator(prepared.dim, shards=shards).accumulate(
                    X_train, y_train
                )
            pass_seconds = span.seconds
            engine = EpsilonSweepEngine(
                objective,
                accumulator,
                tight_sensitivity=tight_sensitivity,
                post_processing=post_processing,
            )
            sweep = engine.sweep(
                epsilon_values,
                rng=derive_substream(
                    seed,
                    [algorithm_key, rep, fold_id],
                    stream_version=stream_version,
                ),
            )
            X_test, y_test = prepared.X[test_idx], prepared.y[test_idx]
            for point in sweep.points:
                scores[point.epsilon].append(
                    score_from_scores(task, y_test, X_test @ point.omega)
                )
                fit_times[point.epsilon].append(
                    pass_seconds / len(epsilon_values) + point.solve_seconds
                )
            n_train = train_idx.shape[0]
    return {
        e: EvaluationResult(
            algorithm="FM",
            task=task,
            mean_score=float(np.mean(scores[e])),
            std_score=float(np.std(scores[e])),
            mean_fit_seconds=float(np.mean(fit_times[e])),
            cells=len(scores[e]),
            n_train=n_train,
        )
        for e in epsilon_values
    }


def evaluate_algorithms(
    algorithms: Sequence[str],
    dataset: CensusDataset,
    task: Task,
    dims: int,
    epsilon: float,
    preset: ScalePreset = DEFAULT,
    sampling_rate: float = 1.0,
    seed: int = 0,
    runtime: str = "batched",
    executor: str | CellExecutor = "serial",
    tile_size: int | None = None,
    stream_version: int | None = None,
) -> dict[str, EvaluationResult]:
    """Evaluate several algorithms at one sweep point; keyed by name.

    .. deprecated::
        Superseded by :meth:`repro.session.Session.evaluate_panel` with
        bitwise-identical results.

    All algorithms plan over one shared
    :class:`~repro.runtime.PreparedDataCache` — each repetition's prepared
    arrays (and, where training splits coincide, their Gram/moment blocks)
    materialize once for the whole panel instead of once per algorithm —
    and execute as one :func:`~repro.runtime.run_plan_group`, which merges
    the quadratic algorithms' closed-form solves into one stacked LAPACK
    call.  Results are bitwise identical to looping
    :func:`evaluate_algorithm` per name (asserted by the runtime suite);
    only the wall-clock and peak memory differ.

    The grouped path always plans **tiled**: a group holds every
    algorithm's plan at once, so eager planning would multiply the peak
    resident set by the panel size whenever repetitions cannot share
    prepared arrays (any subsampled preset or sampling rate < 1).  With
    ``tile_size=None`` (default) residency is bounded at one repetition
    per algorithm — the minimal-memory schedule; pass a larger
    ``tile_size`` to trade memory for fewer, larger dispatches.
    """
    from ..session.compat import legacy_session

    with legacy_session(
        "evaluate_algorithms",
        runtime=runtime,
        executor=executor,
        tile_size=tile_size,
        stream_version=stream_version,
        seed=seed,
    ) as (session, override):
        return session.evaluate_panel(
            algorithms,
            dataset,
            task,
            dims,
            epsilon,
            preset=preset,
            sampling_rate=sampling_rate,
            seed=seed,
            executor=override,
        )


def _evaluate_algorithms_impl(
    algorithms: Sequence[str],
    dataset: CensusDataset,
    task: Task,
    dims: int,
    epsilon: float,
    preset: ScalePreset = DEFAULT,
    sampling_rate: float = 1.0,
    seed: int = 0,
    runtime: str = "batched",
    executor: str | CellExecutor = "serial",
    tile_size: int | None = None,
    stream_version: int = 1,
    prepared_cache: PreparedDataCache | None = None,
) -> dict[str, EvaluationResult]:
    """The grouped-panel body behind :func:`evaluate_algorithms`.

    ``prepared_cache`` defaults to a fresh per-call cache (the legacy
    behaviour); a session passes its persistent one.
    """
    cache = PreparedDataCache() if prepared_cache is None else prepared_cache
    plans = [
        plan_cells_tiled(
            name,
            dataset,
            task=task,
            dims=dims,
            epsilons=[epsilon],
            preset=preset,
            sampling_rate=sampling_rate,
            seed=seed,
            tile_size=1 if tile_size is None else tile_size,
            stream_version=stream_version,
            prepared_cache=cache,
        )
        for name in algorithms
    ]
    outcomes = run_plan_group(plans, mode=runtime, executor=executor)
    return {
        name: _result_for_epsilon(outcome, name, task, float(epsilon))
        for name, outcome in zip(algorithms, outcomes)
    }
