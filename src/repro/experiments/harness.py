"""The Section-7 evaluation protocol: repeated k-fold cross-validation.

"In each experiment, we perform 5-fold cross-validation 50 times for each
algorithm, and we report the average results."  This module implements that
protocol over the uniform :class:`~repro.baselines.base.BaselineRegressor`
interface: every (repetition, fold) trains the algorithm on the training
split, scores the paper's metric on the held-out fold, and also records the
fit wall-time (feeding Figures 7-9).

Randomness plumbing: each (repetition, fold, algorithm) cell derives its own
RNG substream keyed by position, so results are reproducible and algorithms
see independent noise across cells regardless of execution order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..baselines.base import Task, make_algorithm
from ..data.datasets import CensusDataset
from ..exceptions import ExperimentError
from ..privacy.rng import derive_substream
from ..regression.preprocessing import KFold
from .config import DEFAULT, ScalePreset

__all__ = ["EvaluationResult", "evaluate_algorithm", "evaluate_algorithms"]


@dataclass(frozen=True)
class EvaluationResult:
    """Aggregated cross-validated performance of one algorithm.

    Attributes
    ----------
    algorithm:
        Registry name (e.g. ``"FM"``).
    task:
        ``"linear"`` or ``"logistic"``.
    mean_score:
        Average held-out metric over all (repetition, fold) cells — MSE for
        linear, misclassification rate for logistic (lower is better).
    std_score:
        Standard deviation over cells.
    mean_fit_seconds:
        Average wall-clock time of ``fit`` (the paper's "computation time").
    cells:
        Number of (repetition, fold) measurements aggregated.
    n_train:
        Training-set size of each fold.
    """

    algorithm: str
    task: str
    mean_score: float
    std_score: float
    mean_fit_seconds: float
    cells: int
    n_train: int


def evaluate_algorithm(
    algorithm: str,
    dataset: CensusDataset,
    task: Task,
    dims: int,
    epsilon: float,
    preset: ScalePreset = DEFAULT,
    sampling_rate: float = 1.0,
    seed: int = 0,
    algorithm_kwargs: Mapping | None = None,
) -> EvaluationResult:
    """Run the full repeated-CV protocol for one algorithm at one sweep point.

    Parameters
    ----------
    algorithm:
        Registry name; private algorithms receive ``epsilon``.
    dataset:
        The raw census dataset (sampling and normalization happen here).
    dims:
        Table-2 dimensionality (selects the paper's attribute subset).
    epsilon:
        Privacy budget per fit.
    preset:
        Compute scale (records cap, folds, repetitions).
    sampling_rate:
        Table-2 sampling rate, applied to the preset-capped cardinality.
    seed:
        Base seed; all cell substreams derive from it.
    algorithm_kwargs:
        Extra constructor arguments (ablation benches use this).
    """
    if not 0.0 < sampling_rate <= 1.0:
        raise ExperimentError(f"sampling_rate must be in (0, 1], got {sampling_rate!r}")
    kwargs = dict(algorithm_kwargs or {})
    base_n = preset.cardinality(dataset.n)
    scores: list[float] = []
    fit_times: list[float] = []
    n_train = 0
    for rep in range(preset.repetitions):
        rep_rng = derive_substream(seed, [hash(algorithm) % (2**31), rep])
        working = dataset
        if base_n < dataset.n:
            working = working.take(
                rep_rng.choice(dataset.n, size=base_n, replace=False)
            )
        if sampling_rate < 1.0:
            working = working.sample(sampling_rate, rng=rep_rng)
        prepared = working.regression_task(task, dims=dims)
        folds = KFold(n_splits=preset.folds, rng=rep_rng)
        for fold_id, (train_idx, test_idx) in enumerate(folds.split(prepared.n)):
            model = make_algorithm(
                algorithm,
                task,
                epsilon=epsilon,
                rng=derive_substream(seed, [hash(algorithm) % (2**31), rep, fold_id]),
                **kwargs,
            )
            started = time.perf_counter()
            model.fit(prepared.X[train_idx], prepared.y[train_idx])
            fit_times.append(time.perf_counter() - started)
            scores.append(model.score(prepared.X[test_idx], prepared.y[test_idx]))
            n_train = train_idx.shape[0]
    return EvaluationResult(
        algorithm=algorithm,
        task=task,
        mean_score=float(np.mean(scores)),
        std_score=float(np.std(scores)),
        mean_fit_seconds=float(np.mean(fit_times)),
        cells=len(scores),
        n_train=n_train,
    )


def evaluate_algorithms(
    algorithms: Sequence[str],
    dataset: CensusDataset,
    task: Task,
    dims: int,
    epsilon: float,
    preset: ScalePreset = DEFAULT,
    sampling_rate: float = 1.0,
    seed: int = 0,
) -> dict[str, EvaluationResult]:
    """Evaluate several algorithms at one sweep point; keyed by name."""
    return {
        name: evaluate_algorithm(
            name,
            dataset,
            task,
            dims=dims,
            epsilon=epsilon,
            preset=preset,
            sampling_rate=sampling_rate,
            seed=seed,
        )
        for name in algorithms
    }
