"""Private logistic regression on medical data — the paper's Figure-1b story.

The introduction motivates the Functional Mechanism with a clinical
scenario: predict whether a patient develops diabetes from age and
cholesterol-like covariates, without the published model leaking any single
patient's record.  This example builds that scenario end to end:

* a synthetic clinical cohort with realistic risk structure,
* Definition-2 logistic regression via ``FMLogisticRegression``,
* the Truncated and NoPrivacy reference points the paper's Section-7
  logistic panels use,
* a per-patient risk readout from the private model.

Run:  python examples/medical_diabetes.py
"""

import numpy as np

from repro import FMLogisticRegression, FeatureScaler, LogisticRegressionModel
from repro.baselines import Truncated
from repro.regression.metrics import misclassification_rate


def generate_cohort(n: int, rng: np.random.Generator):
    """A synthetic diabetes cohort: age, BMI, cholesterol, activity."""
    age = rng.uniform(20, 90, n)
    bmi = np.clip(rng.normal(27, 5, n), 15, 50)
    cholesterol = np.clip(rng.normal(200, 35, n), 100, 320)
    activity_hours = np.clip(rng.exponential(3, n), 0, 20)
    risk_score = (
        0.05 * (age - 50)
        + 0.22 * (bmi - 27)
        + 0.015 * (cholesterol - 200)
        - 0.35 * activity_hours
        + rng.logistic(0, 1.8, n)
    )
    has_diabetes = (risk_score > 0).astype(float)
    features = np.column_stack([age, bmi, cholesterol, activity_hours])
    return features, has_diabetes


def main() -> None:
    rng = np.random.default_rng(11)
    raw_X, y = generate_cohort(30_000, rng)

    # Declared clinical domains (not data-derived!).
    scaler = FeatureScaler(
        lower=np.array([20.0, 15.0, 100.0, 0.0]),
        upper=np.array([90.0, 50.0, 320.0, 20.0]),
    )
    X = scaler.transform(raw_X)

    print("=== Private diabetes-risk model (Definition 2) ===")
    print(f"cohort size: {len(y)}, prevalence: {y.mean():.1%}\n")

    exact = LogisticRegressionModel().fit(X, y)
    truncated = Truncated(task="logistic").fit(X, y)
    print(f"{'model':<28} {'misclassification':>18}")
    print(f"{'exact MLE (no privacy)':<28} {exact.score_misclassification(X, y):>18.4f}")
    print(f"{'truncated (no privacy)':<28} {misclassification_rate(y, truncated.predict(X)):>18.4f}")

    for epsilon in (3.2, 0.8, 0.2):
        scores = [
            FMLogisticRegression(epsilon=epsilon, rng=seed)
            .fit(X, y)
            .score_misclassification(X, y)
            for seed in range(5)
        ]
        label = f"FM, epsilon = {epsilon}"
        print(f"{label:<28} {np.mean(scores):>18.4f}")

    # ------------------------------------------------------------------
    # Using the released model on new patients.
    # ------------------------------------------------------------------
    model = FMLogisticRegression(epsilon=0.8, rng=0).fit(X, y)
    patients = np.array([
        [35.0, 22.0, 170.0, 8.0],   # young, fit
        [67.0, 33.0, 255.0, 0.5],   # older, high risk factors
        [50.0, 27.0, 200.0, 3.0],   # average
    ])
    risks = model.predict_proba(scaler.transform(patients))
    print("\n--- private model risk readout ---")
    for row, risk in zip(patients, risks):
        print(
            f"age {row[0]:4.0f}, BMI {row[1]:4.1f}, chol {row[2]:5.0f}, "
            f"activity {row[3]:4.1f} h/wk  ->  Pr[diabetes] = {risk:.2f}"
        )
    print(
        "\nThe released coefficients satisfy"
        f" {model.effective_epsilon:g}-differential privacy:"
        " no single patient's record moved them by more than the noise hides."
    )


if __name__ == "__main__":
    main()
