"""Streaming census ingestion + one-pass multi-epsilon Functional Mechanism.

The engine exploits that FM's degree-2 database-level coefficients are
additive moment statistics:

1. stream the census dataset through a ``MomentAccumulator`` chunk by chunk
   (as if rows arrived from a scan or a message queue),
2. verify that a 4-way *sharded* accumulation yields bit-identical
   statistics (parallelism never changes results),
3. refit the mechanism at the whole Table-2 budget range with a single
   ``EpsilonSweepEngine`` call — one data pass total,
4. attach repeated-draw error bars from the same finalized statistics.

Run:  python examples/streaming_census.py
"""

import numpy as np

from repro.core.objectives import LinearRegressionObjective
from repro.data import load_us
from repro.engine import EpsilonSweepEngine, MomentAccumulator, ShardedAccumulator
from repro.regression.metrics import mean_squared_error

CHUNK_ROWS = 5_000
EPSILONS = (0.1, 0.2, 0.4, 0.8, 1.6, 3.2)


def main() -> None:
    dataset = load_us(40_000)
    task = dataset.regression_task("linear", dims=14)
    print("=== streaming engine quickstart ===")
    print(f"records: {task.n}, features: {task.dim}")

    # ------------------------------------------------------------------
    # 1. One streaming pass over the data, chunk by chunk.
    # ------------------------------------------------------------------
    accumulator = MomentAccumulator(task.dim)
    for start in range(0, task.n, CHUNK_ROWS):
        accumulator.update(
            task.X[start : start + CHUNK_ROWS], task.y[start : start + CHUNK_ROWS]
        )
    print(f"streamed {accumulator.n_rows} rows in {CHUNK_ROWS}-row chunks")

    # ------------------------------------------------------------------
    # 2. Sharded ingestion is bit-identical — merge order cannot matter.
    # ------------------------------------------------------------------
    sharded = ShardedAccumulator(task.dim, shards=4).accumulate(task.X, task.y)
    identical = np.array_equal(sharded.snapshot().S2, accumulator.snapshot().S2)
    print(f"4-way sharded statistics bit-identical to streamed: {identical}")

    # ------------------------------------------------------------------
    # 3. Every Table-2 budget from the same finalized statistics.
    # ------------------------------------------------------------------
    objective = LinearRegressionObjective(task.dim)
    engine = EpsilonSweepEngine(objective, accumulator)
    sweep = engine.sweep(EPSILONS, rng=0)
    exact = engine.form.minimize()
    print("\n--- one pass, six budgets (linear task, in-sample MSE) ---")
    print(f"{'epsilon':>8} {'MSE':>10} {'|w - w_exact|':>15}")
    for point in sweep.points:
        mse = mean_squared_error(task.y, task.X @ point.omega)
        distance = float(np.linalg.norm(point.omega - exact))
        print(f"{point.epsilon:>8g} {mse:>10.5f} {distance:>15.4f}")
    print(f"{'(exact)':>8} {mean_squared_error(task.y, task.X @ exact):>10.5f}")

    # ------------------------------------------------------------------
    # 4. Error bars: repeated draws, still zero extra data passes.
    # ------------------------------------------------------------------
    variance = engine.variance_estimate(EPSILONS, repeats=25, rng=1)
    print("\n--- coefficient std over 25 draws (first three epsilons) ---")
    for i, epsilon in enumerate(EPSILONS[:3]):
        print(f"eps={epsilon:g}: mean coef std = {float(variance.std[i].mean()):.4f}")
    print("\nnote: the statistics pass ran once; every refit above reused it.")


if __name__ == "__main__":
    main()
