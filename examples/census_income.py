"""The paper's Section-7 census workload, condensed to one script.

Loads the synthetic IPUMS-like US dataset, prepares the 14-dimensional
linear and logistic tasks exactly as the paper does (attribute subsets,
footnote-1 scaling, income binarization), and compares all five Section-7
algorithms — FM, DPME, FP, NoPrivacy, Truncated — on held-out folds at the
default budget.

Run:  python examples/census_income.py          (about a minute)
      python examples/census_income.py --quick  (seconds, smaller data)
"""

import sys

import numpy as np

from repro.baselines import make_algorithm
from repro.data import load_us
from repro.regression.preprocessing import KFold


def evaluate(dataset, task, algorithms, epsilon=0.8, folds=3, seed=0):
    prepared = dataset.regression_task(task, dims=14)
    results = {name: [] for name in algorithms}
    splitter = KFold(n_splits=folds, rng=seed)
    for fold, (train, test) in enumerate(splitter.split(prepared.n)):
        for name in algorithms:
            model = make_algorithm(name, task, epsilon=epsilon, rng=seed * 100 + fold)
            model.fit(prepared.X[train], prepared.y[train])
            results[name].append(model.score(prepared.X[test], prepared.y[test]))
    return {name: float(np.mean(scores)) for name, scores in results.items()}


def main() -> None:
    quick = "--quick" in sys.argv
    n = 20_000 if quick else 150_000
    print(f"=== IPUMS-like US census, n={n}, epsilon=0.8 ===")
    if quick:
        print(
            "note: --quick runs far below the paper's cardinality; FM's noise\n"
            "is constant in n, so at this scale it is noise-dominated and the\n"
            "orderings below will NOT match Figure 4 — drop --quick for the\n"
            "paper's regime."
        )
    dataset = load_us(n)
    print(f"loaded {dataset.n} records, 13 attributes + Annual Income\n")

    linear = evaluate(dataset, "linear", ["NoPrivacy", "FM", "DPME", "FP"])
    print("Linear regression (income), held-out mean square error:")
    for name, score in sorted(linear.items(), key=lambda kv: kv[1]):
        print(f"  {name:<12} {score:.4f}")

    logistic = evaluate(
        dataset, "logistic", ["NoPrivacy", "Truncated", "FM", "DPME", "FP"]
    )
    print("\nLogistic regression (income > threshold), misclassification rate:")
    for name, score in sorted(logistic.items(), key=lambda kv: kv[1]):
        print(f"  {name:<12} {score:.4f}")

    print(
        "\nReading the numbers against the paper's Figure 4 (at dims=14):\n"
        "  - NoPrivacy sets the floor; Truncated sits on top of it\n"
        "    (the Section-5 truncation is nearly free);\n"
        "  - FM lands close to the floor on the linear task;\n"
        "  - DPME and FP pay for their coarse noisy histograms, most\n"
        "    visibly on the linear task at full dimensionality."
    )


if __name__ == "__main__":
    main()
