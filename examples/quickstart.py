"""Quickstart: differentially private linear regression in five steps.

Demonstrates the full Functional Mechanism pipeline on a small synthetic
table with *declared* attribute domains:

1. declare domains and normalize (footnote 1 of the paper),
2. fit ``FMLinearRegression`` under a chosen privacy budget,
3. compare against the non-private OLS solution,
4. inspect the mechanism diagnostics (sensitivity, noise scale, repair),
5. sweep epsilon to see the privacy/utility trade-off.

Run:  python examples/quickstart.py

For the streaming/sharded variant of this pipeline — ingesting the census
dataset in chunks through ``repro.engine`` and refitting a whole epsilon
sweep from one data pass — see ``examples/streaming_census.py``.
"""

import numpy as np

from repro import (
    FMLinearRegression,
    FeatureScaler,
    LinearRegression,
    TargetScaler,
    mean_squared_error,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # ------------------------------------------------------------------
    # A toy "wage survey": hours worked, years of schooling, age.
    # Domains are DECLARED up front — deriving them from the data would
    # itself leak information about the records.
    # ------------------------------------------------------------------
    n = 20_000
    hours = rng.uniform(0, 60, n)
    schooling = rng.uniform(0, 20, n)
    age = rng.uniform(18, 70, n)
    wage = 4.0 * hours + 90.0 * schooling + 6.0 * (age - 18) + rng.normal(0, 150, n)
    wage = np.clip(wage, 0, 3000)

    raw_X = np.column_stack([hours, schooling, age])
    feature_domains = FeatureScaler(
        lower=np.array([0.0, 0.0, 18.0]),
        upper=np.array([60.0, 20.0, 70.0]),
    )
    target_domain = TargetScaler(lower=0.0, upper=3000.0)

    X = feature_domains.transform(raw_X)     # rows now satisfy ||x||_2 <= 1
    y = target_domain.transform(wage)        # targets now in [-1, 1]

    # ------------------------------------------------------------------
    # Private vs non-private fit.
    # ------------------------------------------------------------------
    epsilon = 1.0
    private = FMLinearRegression(epsilon=epsilon, rng=0).fit(X, y)
    public = LinearRegression().fit(X, y)

    print("=== Functional Mechanism quickstart ===")
    print(f"records: {n}, features: {X.shape[1]}, epsilon: {epsilon}")
    print(f"private  coefficients: {np.round(private.coef_, 4)}")
    print(f"public   coefficients: {np.round(public.coef_, 4)}")
    print(f"private  MSE: {private.score_mse(X, y):.5f}")
    print(f"public   MSE: {public.score_mse(X, y):.5f}")

    # ------------------------------------------------------------------
    # What the mechanism actually did.
    # ------------------------------------------------------------------
    record = private.record_
    repair = private.postprocess_
    print("\n--- mechanism diagnostics ---")
    print(f"Lemma-1 sensitivity Delta = 2(d+1)^2 = {record.sensitivity:g}")
    print(f"Laplace scale per coefficient    = {record.noise_scale:g}")
    print(f"coefficients perturbed           = {record.coefficients_perturbed}")
    print(f"post-processing strategy         = {repair.strategy}")
    print(f"objective needed repair          = {repair.repaired}")

    # ------------------------------------------------------------------
    # The privacy/utility trade-off.
    # ------------------------------------------------------------------
    print("\n--- epsilon sweep (mean over 5 seeds) ---")
    print(f"{'epsilon':>8} {'MSE':>10}")
    for epsilon in (0.1, 0.4, 0.8, 1.6, 3.2):
        scores = [
            FMLinearRegression(epsilon=epsilon, rng=seed).fit(X, y).score_mse(X, y)
            for seed in range(5)
        ]
        print(f"{epsilon:>8g} {np.mean(scores):>10.5f}")
    print(f"{'(no privacy)':>8} {public.score_mse(X, y):>10.5f}")

    # Predictions can be mapped back to original units at any time.
    predicted_wage = target_domain.inverse_transform(private.predict(X[:3]))
    print(f"\nfirst three predicted wages: {np.round(predicted_wage, 1)}")
    print(f"first three actual    wages: {np.round(wage[:3], 1)}")


if __name__ == "__main__":
    main()
