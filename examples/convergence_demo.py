"""Theorem 2 in action: the Functional Mechanism is consistent.

The coefficient noise Algorithm 1 injects has a scale that depends only on
``(d, epsilon)``, while the data term of the objective grows linearly with
the cardinality ``n`` — so the *averaged* noisy objective converges to the
population objective and the FM estimate converges to the true minimizer.

This script draws growing databases from a fixed distribution, runs FM at a
fixed budget, and prints (with an ASCII decay plot) the distance to the
population solution together with the noise-to-signal ratio that Theorem 2
drives to zero.

Run:  python examples/convergence_demo.py
"""

import numpy as np

from repro.analysis.convergence import convergence_study


def ascii_plot(values, width: int = 50) -> list[str]:
    top = max(values)
    return ["#" * max(1, int(round(width * v / top))) for v in values]


def main() -> None:
    cardinalities = [250, 500, 1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000]
    print("=== Theorem 2: consistency of the Functional Mechanism ===")
    print("task: linear regression, d = 4, epsilon = 1.0, 5 repetitions per n\n")

    points = convergence_study(
        cardinalities, dim=4, task="linear", epsilon=1.0, repetitions=5, seed=0
    )

    distances = [p.parameter_distance for p in points]
    bars = ascii_plot(distances)
    print(f"{'n':>8} {'|w_fm - w_pop|':>15} {'noise/signal':>13}   decay")
    for p, bar in zip(points, bars):
        print(f"{p.n:>8} {p.parameter_distance:>15.4f} {p.relative_noise:>13.5f}   {bar}")

    shrink = distances[0] / distances[-1]
    print(
        f"\nParameter error shrank {shrink:.1f}x as n grew "
        f"{cardinalities[-1] // cardinalities[0]}x — the Laplace noise is "
        "constant in n, so its relative weight (last column) vanishes."
    )

    print("\nSame experiment for logistic regression (order-2 objective):")
    log_points = convergence_study(
        [1_000, 8_000, 64_000], dim=4, task="logistic",
        epsilon=1.0, repetitions=5, seed=1,
    )
    for p in log_points:
        print(f"{p.n:>8} {p.parameter_distance:>15.4f}")
    print(
        "\nNote: logistic distances plateau at the Section-5 truncation bias "
        "(Lemma 3) — the paper's reason there is no Theorem-2 analogue for "
        "the approximated objective."
    )


if __name__ == "__main__":
    main()
