"""Anatomy of the privacy/utility trade-off and the Section-6 repairs.

Uses the library's lower-level API directly (objectives, mechanism,
post-processing) rather than the estimator facade, to show what actually
happens as the budget shrinks:

* the noise scale ``Delta / epsilon`` per coefficient,
* the fraction of noisy objectives that lose their minimizer,
* what each repair strategy releases in that regime,
* an empirical check that the release really is epsilon-DP (the audit).

Run:  python examples/privacy_utility_tradeoff.py
"""

import numpy as np

from repro.core.mechanism import FunctionalMechanism
from repro.core.objectives import LinearRegressionObjective
from repro.core.postprocess import (
    NoRepair,
    Regularization,
    RerunUntilBounded,
    SpectralTrimming,
)
from repro.exceptions import UnboundedObjectiveError
from repro.privacy.audit import audit_mechanism


def make_data(n: int, d: int, rng: np.random.Generator):
    X = rng.uniform(0, 1 / np.sqrt(d), size=(n, d))
    w_true = rng.normal(0, 0.6, d)
    y = np.clip(X @ w_true + rng.normal(0, 0.05, n), -1, 1)
    return X, y, w_true


def main() -> None:
    rng = np.random.default_rng(3)
    n, d = 30_000, 6
    X, y, w_true = make_data(n, d, rng)
    objective = LinearRegressionObjective(d)
    form = objective.aggregate_quadratic(X, y)
    delta = objective.sensitivity()
    exact = form.minimize()

    print(f"=== d={d}, n={n}, Delta = 2(d+1)^2 = {delta:g} ===\n")
    print(f"{'epsilon':>8} {'noise scale':>12} {'unbounded':>10} {'|w_fm - w*|':>12}")
    for epsilon in (3.2, 0.8, 0.2, 0.05):
        unbounded = 0
        distances = []
        for seed in range(40):
            mech = FunctionalMechanism(epsilon, rng=seed)
            noisy, record = mech.perturb_quadratic(form, delta)
            if not noisy.is_positive_definite():
                unbounded += 1
            repaired = SpectralTrimming().solve(noisy, record.noise_std)
            distances.append(np.linalg.norm(repaired.omega - exact))
        print(
            f"{epsilon:>8g} {delta / epsilon:>12.1f} {unbounded / 40:>10.0%} "
            f"{np.mean(distances):>12.4f}"
        )

    # ------------------------------------------------------------------
    # What each repair strategy does in the starved-budget regime.
    # ------------------------------------------------------------------
    epsilon = 0.05
    print(f"\n--- repair strategies at epsilon = {epsilon} ---")
    strategies = [NoRepair(), Regularization(), SpectralTrimming(), RerunUntilBounded()]
    for strategy in strategies:
        outcomes = []
        failures = 0
        for seed in range(25):
            mech = FunctionalMechanism(epsilon, rng=1000 + seed)
            noisy, record = mech.perturb_quadratic(form, delta)
            renoise = lambda: mech.perturb_quadratic(form, delta)[0]  # noqa: E731
            try:
                result = strategy.solve(noisy, record.noise_std, renoise=renoise)
                outcomes.append(np.linalg.norm(result.omega - exact))
            except UnboundedObjectiveError:
                failures += 1
        mean = np.mean(outcomes) if outcomes else float("nan")
        cost = "2 eps" if isinstance(strategy, RerunUntilBounded) else "eps"
        print(
            f"  {strategy.name:<12} privacy cost {cost:<6} failures "
            f"{failures}/25  mean |w - w*| = {mean:.4f}"
        )

    # ------------------------------------------------------------------
    # Empirical privacy audit of the release.
    # ------------------------------------------------------------------
    print("\n--- empirical epsilon audit (threshold-event estimator) ---")
    audit_obj = LinearRegressionObjective(1)
    X_a = np.array([[0.6], [0.2], [1.0]])
    y_a = np.array([0.5, -0.3, 1.0])
    y_b = y_a.copy()
    y_b[2] = -1.0  # worst-case neighbor for the linear coefficient

    def release(db, gen):
        mech = FunctionalMechanism(1.0, rng=gen)
        noisy, _ = mech.perturb_quadratic(
            audit_obj.aggregate_quadratic(db[:, :1], db[:, 1]),
            audit_obj.sensitivity(),
        )
        return float(noisy.alpha[0])

    estimate = audit_mechanism(
        release,
        np.hstack([X_a, y_a[:, None]]),
        np.hstack([X_a, y_b[:, None]]),
        nominal_epsilon=1.0,
        trials=8000,
        rng=0,
    )
    print(
        f"nominal epsilon = 1.0, measured lower bound = {estimate.epsilon_hat:.3f} "
        f"({estimate.bins} events) -> consistent: {estimate.consistent}"
    )


if __name__ == "__main__":
    main()
