"""Managing a privacy budget across multiple releases.

Real deployments rarely make a single release.  This example walks a data
custodian through spending one global budget on a sequence of analyses over
the same census table:

1. a differentially private histogram (the DPME building block),
2. an FM linear regression,
3. an FM logistic regression with the Lemma-5 rerun strategy (which costs
   double and is charged as such),

with the :class:`repro.privacy.PrivacyBudget` accountant enforcing that the
total never exceeds the agreed epsilon — including refusing the release
that would overdraw.

Run:  python examples/budget_accounting.py
"""

import numpy as np

from repro import FMLinearRegression, FMLogisticRegression, PrivacyBudget
from repro.baselines.histogram import COUNT_SENSITIVITY, Grid, histogram_counts
from repro.data import load_us
from repro.exceptions import BudgetExhaustedError
from repro.privacy import LaplaceMechanism


def main() -> None:
    dataset = load_us(40_000)
    linear_task = dataset.regression_task("linear", dims=8)
    logistic_task = dataset.regression_task("logistic", dims=8)

    total_epsilon = 2.0
    budget = PrivacyBudget(total_epsilon)
    print(f"=== One table, one budget: epsilon = {total_epsilon} ===\n")

    # ------------------------------------------------------------------
    # Release 1: a noisy age-by-income histogram (epsilon = 0.4).
    # ------------------------------------------------------------------
    grid = Grid(
        lower=np.array([16.0, 0.0]),
        upper=np.array([95.0, 300_000.0]),
        bins_per_dim=np.array([8, 6]),
    )
    counts = histogram_counts(
        grid, np.column_stack([dataset.column("Age"), dataset.income])
    )
    mechanism = LaplaceMechanism(
        epsilon=0.4, sensitivity=COUNT_SENSITIVITY, budget=budget, rng=0
    )
    noisy_counts = np.maximum(mechanism.randomize(counts.astype(float)), 0.0)
    print("release 1: 8x6 age-by-income histogram  (spent 0.4)")
    print(f"  first row of noisy counts: {np.round(noisy_counts[:6]).astype(int)}")
    print(f"  budget remaining: {budget.remaining:.2f}\n")

    # ------------------------------------------------------------------
    # Release 2: FM linear regression (epsilon = 0.8).
    # ------------------------------------------------------------------
    linear = FMLinearRegression(epsilon=0.8, rng=1, budget=budget)
    linear.fit(linear_task.X, linear_task.y)
    print("release 2: FM linear regression          (spent 0.8)")
    print(f"  train MSE: {linear.score_mse(linear_task.X, linear_task.y):.4f}")
    print(f"  budget remaining: {budget.remaining:.2f}\n")

    # ------------------------------------------------------------------
    # Release 3: FM logistic with the Lemma-5 rerun strategy.  Nominal
    # epsilon 0.4, but rerun-until-bounded costs DOUBLE (Lemma 5) — the
    # estimator charges 0.8 against the accountant automatically.
    # ------------------------------------------------------------------
    logistic = FMLogisticRegression(
        epsilon=0.4, rng=2, budget=budget, post_processing="rerun"
    )
    logistic.fit(logistic_task.X, logistic_task.y)
    print("release 3: FM logistic, rerun strategy   (spent 2 x 0.4 = 0.8)")
    print(
        "  misclassification:"
        f" {logistic.score_misclassification(logistic_task.X, logistic_task.y):.4f}"
    )
    print(f"  effective epsilon of this release: {logistic.effective_epsilon:g}")
    print(f"  budget remaining: {budget.remaining:.2f}\n")

    # ------------------------------------------------------------------
    # Release 4 would overdraw -> the accountant refuses.
    # ------------------------------------------------------------------
    print("release 4: attempting one more FM fit at epsilon = 0.5 ...")
    try:
        FMLinearRegression(epsilon=0.5, rng=3, budget=budget).fit(
            linear_task.X, linear_task.y
        )
    except BudgetExhaustedError as err:
        print(f"  refused: {err}")

    print("\n--- final ledger ---")
    for entry in budget.ledger:
        print(f"  {entry.epsilon:>5.2f}  {entry.note}")
    print(f"  total spent: {budget.spent:.2f} / {budget.total:.2f}")


if __name__ == "__main__":
    main()
